//! Generic visualization (paper A.2, Fig. 3): TPC-H q1 from three data
//! models rendered by one tool.
//!
//! Writes `target/uplan_q1.html`, `target/uplan_q1.svg` and
//! `target/uplan_q1.dot`, and prints the ASCII rendering.
//!
//! ```sh
//! cargo run --example visualize_tpch
//! ```

use minidb::profile::EngineProfile;
use uplan::convert::{convert, Source};
use uplan::workloads::tpch;

fn main() {
    let q1 = &tpch::queries()[0].1;

    // PostgreSQL-profile plan.
    let mut pg = tpch::relational(EngineProfile::Postgres, 1);
    let pg_plan = pg.explain(q1).unwrap();
    let pg_unified = convert(Source::PostgresText, &dialects::postgres::to_text(&pg_plan)).unwrap();

    // MySQL-profile plan.
    let mut mysql = tpch::relational(EngineProfile::MySql, 1);
    let mysql_plan = mysql.explain(q1).unwrap();
    let mysql_unified = convert(Source::MySqlJson, &dialects::mysql::to_json(&mysql_plan)).unwrap();

    // MongoDB plan (MQL rewrite over the denormalized collection).
    let mut store = minidoc::DocStore::new();
    tpch::load_document(&mut store, 1, 42);
    let (_, doc_plan) = store.find(&tpch::mongo_queries()[0].1);
    let mongo_unified = convert(Source::MongoJson, &dialects::mongodb::to_json(&doc_plan)).unwrap();

    // One renderer, three DBMSs (the A.2 claim).
    for (name, plan) in [
        ("PostgreSQL", &pg_unified),
        ("MySQL", &mysql_unified),
        ("MongoDB", &mongo_unified),
    ] {
        print!(
            "{}",
            uplan::viz::ascii::render(plan, &format!("{name} TPC-H q1"))
        );
        println!();
    }

    let html = uplan::viz::html::render(&[
        ("PostgreSQL", &pg_unified),
        ("MySQL", &mysql_unified),
        ("MongoDB", &mongo_unified),
    ]);
    std::fs::write("target/uplan_q1.html", html).expect("write html");
    std::fs::write(
        "target/uplan_q1.svg",
        uplan::viz::svg::render(&pg_unified, "PostgreSQL TPC-H q1"),
    )
    .expect("write svg");
    std::fs::write(
        "target/uplan_q1.dot",
        uplan::viz::dot::render(&pg_unified, "q1"),
    )
    .expect("write dot");
    println!("wrote target/uplan_q1.html, target/uplan_q1.svg, target/uplan_q1.dot");
}
