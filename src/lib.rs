//! # uplan — a unified query plan representation for database systems
//!
//! This workspace facade re-exports every crate of the UPlan reproduction
//! (Ba & Rigger, *Towards a Unified Query Plan Representation*, ICDE 2025):
//!
//! * [`core`] *(uplan-core)* — the unified representation: data model, EBNF
//!   text grammar, structured formats, the nine-DBMS study registry,
//!   fingerprinting, statistics, tree edit distance;
//! * [`minidb`] — the relational engine substrate with per-DBMS planner
//!   profiles and fault injection;
//! * [`minidoc`] / [`minigraph`] — document-store and property-graph
//!   substrates;
//! * [`dialects`] — native EXPLAIN serializers of the nine studied dialects;
//! * [`convert`] *(uplan-convert)* — converters from native serialized plans
//!   into the unified representation;
//! * [`corpus`] *(uplan-corpus)* — persistent, fingerprint-deduplicated,
//!   TED-metric-indexed plan populations (BK-tree radius/k-NN queries,
//!   binary/JSONL persistence, clustering, cross-corpus diff);
//! * [`obs`] *(uplan-obs)* — zero-dependency observability: lock-cheap
//!   metrics registry with Prometheus/JSON exposition, structured span
//!   tracing with a JSONL sink;
//! * [`serve`] *(uplan-serve)* — the HTTP/1.1 + JSON daemon serving a
//!   corpus concurrently on a snapshot/delta epoch model (lock-free k-NN
//!   reads during batched ingest, counted-TED budgets, backpressure);
//! * [`testing`] *(uplan-testing)* — QPG, CERT and TLP implemented
//!   DBMS-agnostically on unified plans;
//! * [`viz`] *(uplan-viz)* — generic plan visualization;
//! * [`workloads`] *(uplan-workloads)* — TPC-H-lite, YCSB-lite,
//!   WDBench-lite.
//!
//! See `examples/quickstart.rs` for the end-to-end pipeline of the paper's
//! Fig. 2: run a query on an engine, obtain its native plan, convert it to a
//! unified plan, and process it.

pub use dialects;
pub use minidb;
pub use minidoc;
pub use minigraph;
pub use uplan_convert as convert;
pub use uplan_core as core;
pub use uplan_corpus as corpus;
pub use uplan_obs as obs;
pub use uplan_serve as serve;
pub use uplan_testing as testing;
pub use uplan_viz as viz;
pub use uplan_workloads as workloads;

/// Crate version of the facade.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
