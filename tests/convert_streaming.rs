//! Properties of the unified conversion spine.
//!
//! Three contracts, checked on real dialect fixtures (TPC-H-lite plans
//! from every engine substrate):
//!
//! 1. **Streaming ≡ tree** — every JSON converter is one body driven by
//!    either the streaming `JsonReader` or a parsed-tree replay; the two
//!    drivers must produce identical unified plans (and identical
//!    fingerprints — the goldens in `tests/golden.rs` pin the values).
//! 2. **Truncation safety and error-offset fidelity** — converting any
//!    prefix of a fixture never panics, and where the streaming JSON path
//!    fails with a *parse* error, the offset is exactly the one the tree
//!    parser reports for the same input.
//! 3. **Raw ≡ sequential** — batched multi-threaded raw-dump ingest is
//!    byte-identical to converting each line sequentially with its own
//!    source converter, for arbitrary line subsets (property-tested).

use std::sync::OnceLock;

use proptest::prelude::*;
use uplan::convert::{self, convert, detect, Source};
use uplan::core::fingerprint::fingerprint;
use uplan::core::formats::json;
use uplan::core::Error;
use uplan::corpus::PlanCorpus;
use uplan::testing::fixtures::DialectFleet;

/// One serialized fixture per source dialect (several per dialect for the
/// relational engines): the corpus every property below runs on.
fn fixtures() -> &'static Vec<(Source, String)> {
    static FIXTURES: OnceLock<Vec<(Source, String)>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let mut fleet = DialectFleet::new();
        let mut out: Vec<(Source, String)> = Vec::new();
        for qid in [1usize, 3, 5] {
            out.extend(fleet.relational(qid - 1, qid as u32));
        }
        for mq in [0usize, 1] {
            out.push(fleet.mongo(mq));
        }
        for gq in [0usize, 2] {
            out.push(fleet.neo4j(gq));
        }
        out.push(DialectFleet::influx(2, 9));
        out
    })
}

/// Runs the tree-replay driver of a JSON source (the "legacy" discipline).
fn via_tree(source: Source, input: &str) -> uplan::core::Result<uplan::core::UnifiedPlan> {
    match source {
        Source::PostgresJson => convert::postgres::from_json_via_tree(input),
        Source::MySqlJson => convert::mysql::from_json_via_tree(input),
        Source::MongoJson => convert::mongodb::from_json_via_tree(input),
        _ => unreachable!("not a JSON source"),
    }
}

const JSON_SOURCES: [Source; 3] = [Source::PostgresJson, Source::MySqlJson, Source::MongoJson];

#[test]
fn streaming_conversion_equals_tree_conversion_on_dialect_fixtures() {
    for (source, input) in fixtures() {
        if !JSON_SOURCES.contains(source) {
            continue;
        }
        let streamed = convert(*source, input).unwrap_or_else(|e| panic!("{source:?}: {e}"));
        let via_tree = via_tree(*source, input).unwrap_or_else(|e| panic!("{source:?}: {e}"));
        assert_eq!(streamed, via_tree, "{source:?}: drivers diverged");
        assert_eq!(fingerprint(&streamed), fingerprint(&via_tree));
    }
}

#[test]
fn every_fixture_converts_identically_through_the_trait_registry() {
    // `convert()` and a reused-builder trait-object loop are the same
    // pipeline: builder reuse across mixed dialects leaks nothing.
    let mut builder = convert::NodeBuilder::new(Source::PostgresText.dbms());
    for (source, input) in fixtures() {
        let direct = convert(*source, input).unwrap();
        builder.retarget(source.dbms());
        let via_trait = source.converter().convert(input, &mut builder).unwrap();
        assert_eq!(direct, via_trait, "{source:?}");
        // And a second conversion on the same warm builder agrees too.
        builder.retarget(source.dbms());
        assert_eq!(
            source.converter().convert(input, &mut builder).unwrap(),
            direct,
            "{source:?}: warm builder diverged"
        );
    }
}

#[test]
fn every_fixture_sniffs_back_to_its_own_source() {
    for (source, input) in fixtures() {
        let detected = detect(input);
        // The two PostgreSQL-compatible text dialects are the only
        // intentional aliasing: nothing else may misroute.
        assert_eq!(detected, Some(*source), "{source:?} misdetected");
    }
}

#[test]
fn truncated_inputs_error_or_convert_but_never_panic() {
    for (source, input) in fixtures() {
        let step = (input.len() / 60).max(1);
        let mut cut = 0usize;
        while cut < input.len() {
            if input.is_char_boundary(cut) {
                // Any prefix must produce Ok or Err — never a panic.
                let _ = convert(*source, &input[..cut]);
            }
            cut += step;
        }
    }
}

#[test]
fn streaming_parse_errors_on_truncated_json_match_tree_parser_offsets() {
    for (source, input) in fixtures() {
        if !JSON_SOURCES.contains(source) {
            continue;
        }
        let step = (input.len() / 120).max(1);
        let mut compared = 0usize;
        let mut cut = 0usize;
        while cut < input.len() {
            if input.is_char_boundary(cut) {
                let prefix = &input[..cut];
                match convert(*source, prefix) {
                    // A lexical/structural failure on the streaming path
                    // must be byte-for-byte the tree parser's error.
                    Err(e @ (Error::Parse { .. } | Error::UnexpectedEof(_))) => {
                        let tree_err = json::parse(prefix)
                            .expect_err("streaming parse error implies tree parse error");
                        assert_eq!(e, tree_err, "{source:?} at cut {cut}");
                        compared += 1;
                    }
                    // Semantic errors and (rare) well-formed prefixes: the
                    // two drivers must still agree.
                    other => {
                        if let Ok(doc) = json::parse(prefix) {
                            let _ = doc;
                            assert_eq!(other, via_tree(*source, prefix), "{source:?} at cut {cut}");
                        }
                    }
                }
            }
            cut += step;
        }
        assert!(compared > 0, "{source:?}: no truncation hit the parser");
    }
}

/// Encodes a fixture as one raw-dump line (JSON dialects compact to one
/// line; text dialects are JSON-string-encoded).
fn dump_line(source: Source, input: &str) -> String {
    match source {
        Source::PostgresJson | Source::MySqlJson | Source::MongoJson => json::parse(input)
            .expect("fixture JSON parses")
            .to_compact(),
        _ => json::JsonValue::from(input).to_compact(),
    }
}

#[test]
fn raw_ingest_is_byte_identical_to_per_source_conversion() {
    // The acceptance criterion: a mixed 9-source dump through
    // `ingest_raw` equals (1) the sequential reference path and (2) a
    // hand-rolled per-source convert+observe loop, byte for byte.
    let dump: String = fixtures()
        .iter()
        .map(|(s, i)| dump_line(*s, i) + "\n")
        .collect();

    let mut batched = PlanCorpus::new();
    let report = convert::ingest_raw(&dump, &mut batched, 4).unwrap();
    assert_eq!(report.lines, fixtures().len());
    assert_eq!(report.per_source.len(), Source::ALL.len());

    let mut sequential = PlanCorpus::new();
    let seq_report = convert::ingest_raw_sequential(&dump, &mut sequential).unwrap();
    assert_eq!(report, seq_report);

    let mut reference = PlanCorpus::new();
    for (source, input) in fixtures() {
        reference.observe(&convert(*source, input).unwrap());
    }
    let bytes = reference.to_binary_indexed().unwrap();
    assert_eq!(batched.to_binary_indexed().unwrap(), bytes);
    assert_eq!(sequential.to_binary_indexed().unwrap(), bytes);
    assert_eq!(batched.stats(), reference.stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any subset of fixture lines, in any order and with duplicates,
    /// ingests identically through the batched raw path and the
    /// sequential per-source reference — for every thread count.
    #[test]
    fn raw_ingest_matches_sequential_on_arbitrary_line_subsets(
        picks in prop::collection::vec(0usize..100, 0..30),
        threads in 1usize..6,
    ) {
        let pool = fixtures();
        let dump: String = picks
            .iter()
            .map(|&i| {
                let (source, input) = &pool[i % pool.len()];
                dump_line(*source, input) + "\n"
            })
            .collect();
        let mut batched = PlanCorpus::new();
        let report = convert::ingest_raw(&dump, &mut batched, threads).unwrap();
        let mut sequential = PlanCorpus::new();
        let seq_report = convert::ingest_raw_sequential(&dump, &mut sequential).unwrap();
        prop_assert_eq!(&report, &seq_report);
        prop_assert_eq!(report.lines, picks.len());
        prop_assert_eq!(
            batched.to_binary_indexed().unwrap(),
            sequential.to_binary_indexed().unwrap()
        );
    }

    /// Arbitrary interleavings of valid records and dirty-fleet garbage:
    /// a lenient ingest converts **exactly the valid subset** — byte-
    /// identical to a strict ingest of those lines alone — and its error
    /// census names exactly the garbage lines, in order, at every thread
    /// count and on the sequential reference path.
    #[test]
    fn lenient_ingest_converts_exactly_the_valid_subset_of_dirty_interleavings(
        picks in prop::collection::vec(0usize..130, 0..30),
        threads in 1usize..6,
    ) {
        use uplan::convert::RawIngestOptions;
        use uplan::testing::inject::GARBAGE_LINES;
        let pool = fixtures();
        // Picks ≥100 become garbage records (~23% of lines).
        let mut dump = String::new();
        let mut valid = String::new();
        let mut garbage_lines = Vec::new();
        for (i, &pick) in picks.iter().enumerate() {
            if pick >= 100 {
                dump.push_str(GARBAGE_LINES[pick % GARBAGE_LINES.len()]);
                dump.push('\n');
                garbage_lines.push(i + 1);
            } else {
                let (source, input) = &pool[pick % pool.len()];
                let line = dump_line(*source, input);
                dump.push_str(&line);
                dump.push('\n');
                valid.push_str(&line);
                valid.push('\n');
            }
        }

        let options = RawIngestOptions::lenient();
        let mut lenient = PlanCorpus::new();
        let report = convert::ingest_raw_with(&dump, &mut lenient, threads, &options).unwrap();
        prop_assert_eq!(report.lines, picks.len() - garbage_lines.len());
        let reported: Vec<usize> = report.errors.iter().map(|e| e.line).collect();
        prop_assert_eq!(&reported, &garbage_lines);

        let mut seq = PlanCorpus::new();
        let seq_report =
            convert::ingest_raw_sequential_with(&dump, &mut seq, &options).unwrap();
        prop_assert_eq!(&report, &seq_report);

        let mut reference = PlanCorpus::new();
        let strict_report = convert::ingest_raw(&valid, &mut reference, threads).unwrap();
        prop_assert_eq!(strict_report.lines, report.lines);
        prop_assert_eq!(strict_report.census(), report.census());
        let bytes = reference.to_binary_indexed().unwrap();
        prop_assert_eq!(lenient.to_binary_indexed().unwrap(), bytes.clone());
        prop_assert_eq!(seq.to_binary_indexed().unwrap(), bytes);
    }
}
