//! The dirty-fleet hardening contract, driven end to end by the seeded
//! fault-injection harness (`uplan_testing::inject`).
//!
//! Two artifact kinds arrive from the outside world — binary UPLN corpus
//! documents and raw mixed-source dumps — and for both the contract is:
//!
//! * **no panic**, ever, on corrupted input;
//! * strict loads either succeed losslessly or fail with a bounded,
//!   descriptive error — never silently drop plans;
//! * salvage recovers plans that **fingerprint-match** the originals, and
//!   where the mutation class is prefix-bounded
//!   ([`inject::expected_recoverable`]) recovers **exactly** the promised
//!   count;
//! * lenient raw ingest of a dump with ≥10% garbage is **byte-identical**
//!   to a strict ingest of its valid subset, with an exact error census.
//!
//! Every mutation is seeded, so a failure here reproduces deterministically.

use std::sync::OnceLock;

use minidb::profile::EngineProfile;
use uplan::convert::{self, RawIngestOptions};
use uplan::core::fingerprint::fingerprint;
use uplan::core::formats::binary::{self, SectionBoundary};
use uplan::corpus::PlanCorpus;
use uplan::testing::inject::{self, FaultMutation};
use uplan::workloads::tpch;
use uplan_bench::corpus_fixture;

/// Seed of the fixture corpus (and default seed of the mutation sweeps).
const SEED: u64 = 0xD15E_A5ED;

/// A checked (v3), index-carrying document of ~1000 distinct derived
/// TPC-H plans, plus the fingerprint of every plan in document order.
fn fixture() -> &'static (Vec<u8>, Vec<u64>) {
    static DOC: OnceLock<(Vec<u8>, Vec<u64>)> = OnceLock::new();
    DOC.get_or_init(|| {
        let corpus = corpus_fixture::derived_corpus(1000, SEED);
        let bytes = corpus.to_binary_indexed().unwrap();
        let intact = binary::salvage(&bytes);
        assert!(intact.error.is_none(), "fixture document must be intact");
        assert!(intact.verified, "v3 documents salvage checksum-verified");
        let prints: Vec<u64> = intact.plans.iter().map(|p| fingerprint(p).0).collect();
        assert!(prints.len() >= 1000);
        (bytes, prints)
    })
}

/// Drives one mutation through both loaders and asserts the full
/// hardening contract on the outcome.
fn assert_contract(
    bytes: &[u8],
    prints: &[u64],
    sections: &[SectionBoundary],
    mutation: &FaultMutation,
) {
    let what = mutation.describe();
    let corrupt = mutation.apply(bytes);

    // Salvage never panics; where the mutation class is prefix-bounded it
    // recovers *exactly* the promised count, and every survivor
    // fingerprint-matches the original plan at its position.
    let outcome = binary::salvage(&corrupt);
    if let Some(expected) = inject::expected_recoverable(sections, mutation) {
        assert_eq!(outcome.plans.len() as u64, expected, "{what}");
        for (i, plan) in outcome.plans.iter().enumerate() {
            assert_eq!(fingerprint(plan).0, prints[i], "{what}: salvaged plan {i}");
        }
        if expected < prints.len() as u64 {
            assert!(
                outcome.error.is_some(),
                "{what}: lossy salvage must say why"
            );
        }
    }

    // The strict loader never panics and never *silently* loses plans: it
    // either refuses the document or yields the full population.
    match PlanCorpus::from_binary(&corrupt) {
        Ok(loaded) => assert_eq!(loaded.len(), prints.len(), "{what}: silent loss"),
        Err(e) => assert!(!e.to_string().is_empty(), "{what}: empty error"),
    }
}

#[test]
fn truncations_recover_exactly_the_promised_prefix() {
    let (bytes, prints) = fixture();
    let sections = binary::section_map(bytes).unwrap();
    // header + ≥4 checksum blocks of 256 + document end for 1000+ plans.
    assert!(sections.len() >= 6, "unexpected section map: {sections:?}");

    // Cuts at every section boundary: clean prefix recovery.
    for mutation in inject::truncation_plan(&sections) {
        assert_contract(bytes, prints, &sections, &mutation);
    }
    // Cuts *inside* a section lose exactly that section — still an exact
    // expectation.
    for pair in sections.windows(2) {
        let mid = (pair[0].end + pair[1].end) / 2;
        let mutation = FaultMutation::Truncate { len: mid };
        assert!(
            inject::expected_recoverable(&sections, &mutation).is_some(),
            "truncations are always exactly predictable"
        );
        assert_contract(bytes, prints, &sections, &mutation);
    }
}

#[test]
fn seeded_bitflips_are_caught_or_harmless_never_silent() {
    let (bytes, prints) = fixture();
    let sections = binary::section_map(bytes).unwrap();
    // A document-wide sweep (the version varint may be hit — there the
    // oracle abstains and the contract reduces to no-panic/no-silent-loss).
    for mutation in inject::bitflip_sweep(bytes.len(), SEED, 32) {
        assert_contract(bytes, prints, &sections, &mutation);
    }
    // Past the header the oracle is total: every seed has an exact count.
    for seed in 0..8u64 {
        let mutation = inject::bitflip_past_header(&sections, seed).unwrap();
        assert!(inject::expected_recoverable(&sections, &mutation).is_some());
        assert_contract(bytes, prints, &sections, &mutation);
    }
}

#[test]
fn splices_and_duplicated_blocks_never_panic_or_lose_plans_silently() {
    let (bytes, prints) = fixture();
    let sections = binary::section_map(bytes).unwrap();
    for mutation in inject::splice_plan(bytes.len(), SEED, 12) {
        assert_contract(bytes, prints, &sections, &mutation);
    }
    for seed in 0..8u64 {
        let mutation = inject::splice_past_header(&sections, seed).unwrap();
        assert!(inject::expected_recoverable(&sections, &mutation).is_some());
        assert_contract(bytes, prints, &sections, &mutation);
    }
    // Replayed writes: a duplicated block re-verifies, so no exact count
    // is promised — but the loaders must still never panic or lose plans
    // without saying so.
    for mutation in inject::duplicate_block_plan(&sections) {
        assert_contract(bytes, prints, &sections, &mutation);
    }
}

// ---------------------------------------------------------------------------
// Raw-dump half of the contract: dirty mixed-source dumps.
// ---------------------------------------------------------------------------

/// A clean 22-line mixed dump covering all eleven serializations (two
/// TPC-H-lite queries through every engine substrate).
fn clean_dump() -> &'static String {
    static DUMP: OnceLock<String> = OnceLock::new();
    DUMP.get_or_init(|| {
        use uplan::core::formats::json::{self, JsonValue};
        let queries = tpch::queries();
        let mut pg = tpch::relational(EngineProfile::Postgres, 1);
        let mut mysql = tpch::relational(EngineProfile::MySql, 1);
        let mut tidb = tpch::relational(EngineProfile::TiDb, 1);
        let mut sqlite = tpch::relational(EngineProfile::Sqlite, 1);
        let mut store = minidoc::DocStore::new();
        tpch::load_document(&mut store, 1, 7);
        let mut graph = minigraph::GraphStore::new();
        tpch::load_graph(&mut graph, 1, 7);

        let text = |t: &str| JsonValue::from(t).to_compact();
        let jdoc = |d: &str| json::parse(d).unwrap().to_compact();
        let mut lines = Vec::new();
        for qid in [1usize, 3] {
            let (_, sql) = &queries[qid - 1];
            let plan = pg.explain(sql).unwrap();
            lines.push(text(&dialects::postgres::to_text(&plan)));
            lines.push(jdoc(&dialects::postgres::to_json(&plan)));
            lines.push(text(&dialects::sparksql::to_text(&plan)));
            lines.push(text(&dialects::sqlserver::to_xml(&plan)));
            let plan = mysql.explain(sql).unwrap();
            lines.push(jdoc(&dialects::mysql::to_json(&plan)));
            lines.push(text(&dialects::mysql::to_table(&plan)));
            let plan = tidb.explain(sql).unwrap();
            lines.push(text(&dialects::tidb::to_table(&plan, qid as u32)));
            let plan = sqlite.explain(sql).unwrap();
            lines.push(text(&dialects::sqlite::to_text(&plan)));
            let (_, doc_plan) = store.find(&tpch::mongo_queries()[qid % 2].1);
            lines.push(jdoc(&dialects::mongodb::to_json(&doc_plan)));
            let (_, graph_plan) = graph.run(&tpch::graph_queries()[qid % 3].1);
            lines.push(text(&dialects::neo4j::to_table(&graph_plan)));
            lines.push(text(&dialects::influxdb::to_text(
                &dialects::influxdb::InfluxStats::synthetic(qid as u64, qid as u64 * 7),
            )));
        }
        let mut dump = lines.join("\n");
        dump.push('\n');
        dump
    })
}

#[test]
fn lenient_ingest_of_a_dirty_dump_equals_strict_ingest_of_the_valid_subset() {
    let clean = clean_dump();
    let clean_lines = clean.lines().count();
    // ≥10% garbage (6 of 28 lines), seeded — the injector reports the
    // exact 1-based line numbers it dirtied.
    let (dirty, injected) = inject::inject_garbage_lines(clean, SEED, 6);
    assert!(injected.len() * 10 >= dirty.lines().count());
    assert_eq!(dirty.lines().count(), clean_lines + injected.len());

    // Strict ingest aborts on a garbage line, naming it. (Which one
    // surfaces first depends on the pipeline stage: classify failures are
    // seen before the convert-stage failures of the same batch.)
    let mut strict = PlanCorpus::new();
    let err = convert::ingest_raw(&dirty, &mut strict, 4).unwrap_err();
    let msg = err.to_string();
    assert!(
        injected.iter().any(|l| msg.contains(&format!("line {l}"))),
        "strict error {msg:?} must name one of the injected lines {injected:?}"
    );

    // Lenient ingest skips exactly the injected lines...
    let quarantine = std::env::temp_dir().join(format!(
        "uplan_fault_injection_quarantine_{}.jsonl",
        std::process::id()
    ));
    let options = RawIngestOptions {
        quarantine: Some(quarantine.clone()),
        ..RawIngestOptions::lenient()
    };
    let mut lenient = PlanCorpus::new();
    let report = convert::ingest_raw_with(&dirty, &mut lenient, 4, &options).unwrap();
    assert_eq!(report.lines, clean_lines);
    let skipped: Vec<usize> = report.errors.iter().map(|e| e.line).collect();
    assert_eq!(
        skipped, injected,
        "error census must be exactly the injected lines"
    );

    // ...identically across thread counts and against the sequential
    // reference...
    let mut lenient_seq = PlanCorpus::new();
    let seq_report =
        convert::ingest_raw_sequential_with(&dirty, &mut lenient_seq, &options).unwrap();
    assert_eq!(report, seq_report);
    let mut lenient_one = PlanCorpus::new();
    let one_report = convert::ingest_raw_with(&dirty, &mut lenient_one, 1, &options).unwrap();
    assert_eq!(report, one_report);

    // ...and byte-identical to a strict ingest of the valid subset.
    let valid_subset: String = dirty
        .lines()
        .enumerate()
        .filter(|(i, _)| !injected.contains(&(i + 1)))
        .map(|(_, line)| format!("{line}\n"))
        .collect();
    let mut reference = PlanCorpus::new();
    let reference_report = convert::ingest_raw(&valid_subset, &mut reference, 4).unwrap();
    assert_eq!(reference_report.lines, clean_lines);
    assert_eq!(reference_report.census(), report.census());
    let bytes = reference.to_binary_indexed().unwrap();
    assert_eq!(lenient.to_binary_indexed().unwrap(), bytes);
    assert_eq!(lenient_seq.to_binary_indexed().unwrap(), bytes);
    assert_eq!(lenient_one.to_binary_indexed().unwrap(), bytes);

    // The quarantine file replays to the same failures: every record
    // fails again, none converts.
    let replay = std::fs::read_to_string(&quarantine).unwrap();
    let _ = std::fs::remove_file(&quarantine);
    assert_eq!(replay.lines().count(), injected.len());
    let mut empty = PlanCorpus::new();
    let replay_report =
        convert::ingest_raw_with(&replay, &mut empty, 2, &RawIngestOptions::lenient()).unwrap();
    assert_eq!(replay_report.lines, 0);
    assert_eq!(replay_report.errors.len(), injected.len());
    assert!(empty.is_empty());
}

#[test]
fn framed_encodings_of_the_dirty_dump_agree_with_jsonl() {
    // The same records under `---` separator framing ingest to the same
    // corpus and the same per-source census as the JSONL encoding.
    let clean = clean_dump();
    let (dirty, _) = inject::inject_garbage_lines(clean, SEED, 6);

    let mut jsonl = PlanCorpus::new();
    let jsonl_report =
        convert::ingest_raw_with(&dirty, &mut jsonl, 4, &RawIngestOptions::lenient()).unwrap();

    // Separator framing: a leading `---` selects the framing, then one
    // record per `---`-terminated frame.
    let separated: String = std::iter::once("---\n".to_owned())
        .chain(dirty.lines().map(|line| format!("{line}\n---\n")))
        .collect();
    assert_eq!(
        convert::sniff_framing(&separated),
        convert::RawFraming::Separator
    );
    let mut framed = PlanCorpus::new();
    let framed_report =
        convert::ingest_raw_with(&separated, &mut framed, 4, &RawIngestOptions::lenient()).unwrap();

    assert_eq!(framed_report.lines, jsonl_report.lines);
    assert_eq!(framed_report.errors.len(), jsonl_report.errors.len());
    assert_eq!(framed_report.census(), jsonl_report.census());
    assert_eq!(
        framed.to_binary_indexed().unwrap(),
        jsonl.to_binary_indexed().unwrap()
    );
}
