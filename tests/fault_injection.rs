//! The dirty-fleet hardening contract, driven end to end by the seeded
//! fault-injection harness (`uplan_testing::inject`).
//!
//! Three artifact kinds arrive from the outside world — binary UPLN
//! corpus documents, append-only segment-store directories, and raw
//! mixed-source dumps — and for all of them the contract is:
//!
//! * **no panic**, ever, on corrupted input;
//! * strict loads either succeed losslessly or fail with a bounded,
//!   descriptive error — never silently drop plans;
//! * salvage recovers plans that **fingerprint-match** the originals, and
//!   where the mutation class is prefix-bounded
//!   ([`inject::expected_recoverable`]) recovers **exactly** the promised
//!   count;
//! * lenient raw ingest of a dump with ≥10% garbage is **byte-identical**
//!   to a strict ingest of its valid subset, with an exact error census.
//!
//! Every mutation is seeded, so a failure here reproduces deterministically.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use minidb::profile::EngineProfile;
use uplan::convert::{self, RawIngestOptions};
use uplan::core::fingerprint::{fingerprint, FingerprintOptions};
use uplan::core::formats::binary::{self, SectionBoundary};
use uplan::core::UnifiedPlan;
use uplan::corpus::{PlanCorpus, SegmentStore, MANIFEST_FILE};
use uplan::testing::inject::{self, FaultMutation, StoreFault};
use uplan::workloads::tpch;
use uplan_bench::corpus_fixture;

/// Seed of the fixture corpus (and default seed of the mutation sweeps).
const SEED: u64 = 0xD15E_A5ED;

/// A checked (v3), index-carrying document of ~1000 distinct derived
/// TPC-H plans, plus the fingerprint of every plan in document order.
fn fixture() -> &'static (Vec<u8>, Vec<u64>) {
    static DOC: OnceLock<(Vec<u8>, Vec<u64>)> = OnceLock::new();
    DOC.get_or_init(|| {
        let corpus = corpus_fixture::derived_corpus(1000, SEED);
        let bytes = corpus.to_binary_indexed().unwrap();
        let intact = binary::salvage(&bytes);
        assert!(intact.error.is_none(), "fixture document must be intact");
        assert!(intact.verified, "v3 documents salvage checksum-verified");
        let prints: Vec<u64> = intact.plans.iter().map(|p| fingerprint(p).0).collect();
        assert!(prints.len() >= 1000);
        (bytes, prints)
    })
}

/// Drives one mutation through both loaders and asserts the full
/// hardening contract on the outcome.
fn assert_contract(
    bytes: &[u8],
    prints: &[u64],
    sections: &[SectionBoundary],
    mutation: &FaultMutation,
) {
    let what = mutation.describe();
    let corrupt = mutation.apply(bytes);

    // Salvage never panics; where the mutation class is prefix-bounded it
    // recovers *exactly* the promised count, and every survivor
    // fingerprint-matches the original plan at its position.
    let outcome = binary::salvage(&corrupt);
    if let Some(expected) = inject::expected_recoverable(sections, mutation) {
        assert_eq!(outcome.plans.len() as u64, expected, "{what}");
        for (i, plan) in outcome.plans.iter().enumerate() {
            assert_eq!(fingerprint(plan).0, prints[i], "{what}: salvaged plan {i}");
        }
        if expected < prints.len() as u64 {
            assert!(
                outcome.error.is_some(),
                "{what}: lossy salvage must say why"
            );
        }
    }

    // The strict loader never panics and never *silently* loses plans: it
    // either refuses the document or yields the full population.
    match PlanCorpus::from_binary(&corrupt) {
        Ok(loaded) => assert_eq!(loaded.len(), prints.len(), "{what}: silent loss"),
        Err(e) => assert!(!e.to_string().is_empty(), "{what}: empty error"),
    }
}

#[test]
fn truncations_recover_exactly_the_promised_prefix() {
    let (bytes, prints) = fixture();
    let sections = binary::section_map(bytes).unwrap();
    // header + ≥4 checksum blocks of 256 + document end for 1000+ plans.
    assert!(sections.len() >= 6, "unexpected section map: {sections:?}");

    // Cuts at every section boundary: clean prefix recovery.
    for mutation in inject::truncation_plan(&sections) {
        assert_contract(bytes, prints, &sections, &mutation);
    }
    // Cuts *inside* a section lose exactly that section — still an exact
    // expectation.
    for pair in sections.windows(2) {
        let mid = (pair[0].end + pair[1].end) / 2;
        let mutation = FaultMutation::Truncate { len: mid };
        assert!(
            inject::expected_recoverable(&sections, &mutation).is_some(),
            "truncations are always exactly predictable"
        );
        assert_contract(bytes, prints, &sections, &mutation);
    }
}

#[test]
fn seeded_bitflips_are_caught_or_harmless_never_silent() {
    let (bytes, prints) = fixture();
    let sections = binary::section_map(bytes).unwrap();
    // A document-wide sweep (the version varint may be hit — there the
    // oracle abstains and the contract reduces to no-panic/no-silent-loss).
    for mutation in inject::bitflip_sweep(bytes.len(), SEED, 32) {
        assert_contract(bytes, prints, &sections, &mutation);
    }
    // Past the header the oracle is total: every seed has an exact count.
    for seed in 0..8u64 {
        let mutation = inject::bitflip_past_header(&sections, seed).unwrap();
        assert!(inject::expected_recoverable(&sections, &mutation).is_some());
        assert_contract(bytes, prints, &sections, &mutation);
    }
}

#[test]
fn splices_and_duplicated_blocks_never_panic_or_lose_plans_silently() {
    let (bytes, prints) = fixture();
    let sections = binary::section_map(bytes).unwrap();
    for mutation in inject::splice_plan(bytes.len(), SEED, 12) {
        assert_contract(bytes, prints, &sections, &mutation);
    }
    for seed in 0..8u64 {
        let mutation = inject::splice_past_header(&sections, seed).unwrap();
        assert!(inject::expected_recoverable(&sections, &mutation).is_some());
        assert_contract(bytes, prints, &sections, &mutation);
    }
    // Replayed writes: a duplicated block re-verifies, so no exact count
    // is promised — but the loaders must still never panic or lose plans
    // without saying so.
    for mutation in inject::duplicate_block_plan(&sections) {
        assert_contract(bytes, prints, &sections, &mutation);
    }
}

// ---------------------------------------------------------------------------
// Segment-store half of the contract: per-file faults against an
// append-only store directory. The segment is the recovery unit, so
// `SegmentStore::salvage` must recover *exactly* the surviving segments'
// plan counts ([`inject::expected_store_recovery`]) — and, byte for byte,
// the corpus an eager re-ingest of the surviving batches produces.
// ---------------------------------------------------------------------------

/// A pristine store directory, its per-segment plan census, and the
/// batches that built it in ingest order.
type StoreFixture = (PathBuf, Vec<(u32, u64)>, Vec<Vec<UnifiedPlan>>);

/// A pristine three-segment store of 120 fingerprint-distinct derived
/// plans (a seed segment plus two appended batches of 40), its
/// per-segment plan census, and the three batches in ingest order.
fn store_fixture() -> &'static StoreFixture {
    static STORE: OnceLock<StoreFixture> = OnceLock::new();
    STORE.get_or_init(|| {
        // Dedupe the derived stream by fingerprint so every plan lands in
        // exactly one segment — the precondition for a per-segment-exact
        // recovery oracle.
        let mut seen = HashSet::new();
        let distinct: Vec<UnifiedPlan> = corpus_fixture::derived_stream(600, SEED)
            .into_iter()
            .filter(|plan| seen.insert(fingerprint(plan).0))
            .take(120)
            .collect();
        assert_eq!(distinct.len(), 120, "stream too repetitive for fixture");
        let batches: Vec<Vec<UnifiedPlan>> =
            distinct.chunks(40).map(|chunk| chunk.to_vec()).collect();

        let dir = std::env::temp_dir().join(format!(
            "uplan-fault-injection-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut seed_corpus = PlanCorpus::new();
        for plan in &batches[0] {
            seed_corpus.insert(plan.clone());
        }
        let mut store = SegmentStore::create(&dir, seed_corpus).unwrap();
        for batch in &batches[1..] {
            let report = store.append(batch, 1).unwrap();
            assert_eq!(report.duplicates, 0, "fixture batches must be distinct");
        }
        let census: Vec<(u32, u64)> = store.census().iter().map(|c| (c.id, c.plans)).collect();
        assert_eq!(census, vec![(0, 40), (1, 40), (2, 40)]);
        (dir, census, batches)
    })
}

/// Materializes the fault against a copy of the pristine store and
/// asserts the salvage contract: the report matches the oracle exactly,
/// and the recovered corpus is byte-identical to an eager ingest of the
/// surviving batches alone.
fn assert_store_contract(fault: &StoreFault) {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let (src, census, batches) = store_fixture();
    let what = fault.describe();
    let dst = std::env::temp_dir().join(format!(
        "uplan-fault-injection-store-case-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    fault.apply_to_copy(src, &dst).unwrap();

    let expect = inject::expected_store_recovery(census, fault);
    let (corpus, report) = SegmentStore::salvage(&dst, FingerprintOptions::default()).unwrap();
    assert_eq!(report.manifest_ok, expect.manifest_ok, "{what}");
    assert_eq!(report.segments_declared, census.len(), "{what}");
    assert_eq!(
        report.segments_recovered, expect.segments_recovered,
        "{what}"
    );
    assert_eq!(report.recovered as u64, expect.recovered, "{what}");
    assert_eq!(report.dropped, expect.dropped, "{what}");
    assert!(report.index_rebuilt, "{what}: a damaged store never adopts");
    let error = report.error.as_deref().unwrap_or_else(|| {
        panic!("{what}: damaged salvage must say why");
    });
    if let Some(id) = expect.dropped_segment {
        assert!(
            error.contains(&format!("segment {id}")),
            "{what}: error {error:?} must name segment {id}"
        );
    }

    // Byte-exactness: the salvaged corpus equals an eager corpus built
    // from the surviving batches in their original ingest order.
    let mut reference = PlanCorpus::new();
    for (slot, batch) in batches.iter().enumerate() {
        if expect.dropped_segment == Some(slot as u32) {
            continue;
        }
        for plan in batch {
            reference.insert(plan.clone());
        }
    }
    assert_eq!(
        corpus.to_binary_indexed().unwrap(),
        reference.to_binary_indexed().unwrap(),
        "{what}: salvage must reproduce the surviving batches byte-exactly"
    );

    // The strict open refuses any store with a missing or severed file
    // (a mid-file bit flip may be in a lazily verified plan block, so
    // strict open is only promised to catch structural damage).
    let structural = matches!(
        fault,
        StoreFault::Delete { .. }
            | StoreFault::Mutate {
                mutation: FaultMutation::Truncate { .. },
                ..
            }
    );
    if structural {
        let refused = SegmentStore::open(&dst);
        assert!(refused.is_err(), "{what}: strict open must refuse");
        assert!(
            !refused.unwrap_err().to_string().is_empty(),
            "{what}: empty error"
        );
    }

    let _ = std::fs::remove_dir_all(&dst);
}

#[test]
fn segment_file_faults_drop_exactly_that_segment() {
    let (src, _, _) = store_fixture();
    // One fault per store file, three damage classes each: a seeded bit
    // flip, a seeded strict-prefix truncation, and outright deletion.
    // Segment faults must cost exactly that segment; manifest faults must
    // cost nothing (the symbol chain rebuilds from segment deltas).
    for fault in inject::store_bitflip_plan(src, SEED).unwrap() {
        assert_store_contract(&fault);
    }
    for fault in inject::store_truncate_plan(src, SEED).unwrap() {
        assert_store_contract(&fault);
    }
    for fault in inject::store_delete_plan(src).unwrap() {
        assert_store_contract(&fault);
    }
}

#[test]
fn manifest_loss_plus_symbol_segment_loss_cascades() {
    // Composed faults are outside the single-fault oracle: with the
    // manifest gone the symbol chain rebuilds from segment deltas, so
    // losing the base-symbol-carrying segment 0 as well must cascade
    // onto every later segment — salvage recovers zero plans but still
    // reports the loss instead of panicking or inventing plans.
    let (src, _, _) = store_fixture();
    let dst = std::env::temp_dir().join(format!(
        "uplan-fault-injection-store-cascade-{}",
        std::process::id()
    ));
    StoreFault::Delete {
        file: MANIFEST_FILE.to_owned(),
    }
    .apply_to_copy(src, &dst)
    .unwrap();
    StoreFault::Delete {
        file: uplan::corpus::segment_file(0),
    }
    .apply(&dst)
    .unwrap();

    let (corpus, report) = SegmentStore::salvage(&dst, FingerprintOptions::default()).unwrap();
    assert!(!report.manifest_ok);
    // With both the manifest and segment 0 gone, only the two surviving
    // files are even declared — and the broken chain then drops them too.
    assert_eq!(report.segments_declared, 2);
    assert_eq!(report.segments_recovered, 0);
    assert_eq!(report.recovered, 0);
    assert_eq!(report.dropped, 80);
    assert!(corpus.is_empty());
    let error = report.error.unwrap();
    assert!(
        error.contains("manifest missing or corrupt"),
        "error {error:?}"
    );

    let _ = std::fs::remove_dir_all(&dst);
}

// ---------------------------------------------------------------------------
// Raw-dump half of the contract: dirty mixed-source dumps.
// ---------------------------------------------------------------------------

/// A clean 22-line mixed dump covering all eleven serializations (two
/// TPC-H-lite queries through every engine substrate).
fn clean_dump() -> &'static String {
    static DUMP: OnceLock<String> = OnceLock::new();
    DUMP.get_or_init(|| {
        use uplan::core::formats::json::{self, JsonValue};
        let queries = tpch::queries();
        let mut pg = tpch::relational(EngineProfile::Postgres, 1);
        let mut mysql = tpch::relational(EngineProfile::MySql, 1);
        let mut tidb = tpch::relational(EngineProfile::TiDb, 1);
        let mut sqlite = tpch::relational(EngineProfile::Sqlite, 1);
        let mut store = minidoc::DocStore::new();
        tpch::load_document(&mut store, 1, 7);
        let mut graph = minigraph::GraphStore::new();
        tpch::load_graph(&mut graph, 1, 7);

        let text = |t: &str| JsonValue::from(t).to_compact();
        let jdoc = |d: &str| json::parse(d).unwrap().to_compact();
        let mut lines = Vec::new();
        for qid in [1usize, 3] {
            let (_, sql) = &queries[qid - 1];
            let plan = pg.explain(sql).unwrap();
            lines.push(text(&dialects::postgres::to_text(&plan)));
            lines.push(jdoc(&dialects::postgres::to_json(&plan)));
            lines.push(text(&dialects::sparksql::to_text(&plan)));
            lines.push(text(&dialects::sqlserver::to_xml(&plan)));
            let plan = mysql.explain(sql).unwrap();
            lines.push(jdoc(&dialects::mysql::to_json(&plan)));
            lines.push(text(&dialects::mysql::to_table(&plan)));
            let plan = tidb.explain(sql).unwrap();
            lines.push(text(&dialects::tidb::to_table(&plan, qid as u32)));
            let plan = sqlite.explain(sql).unwrap();
            lines.push(text(&dialects::sqlite::to_text(&plan)));
            let (_, doc_plan) = store.find(&tpch::mongo_queries()[qid % 2].1);
            lines.push(jdoc(&dialects::mongodb::to_json(&doc_plan)));
            let (_, graph_plan) = graph.run(&tpch::graph_queries()[qid % 3].1);
            lines.push(text(&dialects::neo4j::to_table(&graph_plan)));
            lines.push(text(&dialects::influxdb::to_text(
                &dialects::influxdb::InfluxStats::synthetic(qid as u64, qid as u64 * 7),
            )));
        }
        let mut dump = lines.join("\n");
        dump.push('\n');
        dump
    })
}

#[test]
fn lenient_ingest_of_a_dirty_dump_equals_strict_ingest_of_the_valid_subset() {
    let clean = clean_dump();
    let clean_lines = clean.lines().count();
    // ≥10% garbage (6 of 28 lines), seeded — the injector reports the
    // exact 1-based line numbers it dirtied.
    let (dirty, injected) = inject::inject_garbage_lines(clean, SEED, 6);
    assert!(injected.len() * 10 >= dirty.lines().count());
    assert_eq!(dirty.lines().count(), clean_lines + injected.len());

    // Strict ingest aborts on a garbage line, naming it. (Which one
    // surfaces first depends on the pipeline stage: classify failures are
    // seen before the convert-stage failures of the same batch.)
    let mut strict = PlanCorpus::new();
    let err = convert::ingest_raw(&dirty, &mut strict, 4).unwrap_err();
    let msg = err.to_string();
    assert!(
        injected.iter().any(|l| msg.contains(&format!("line {l}"))),
        "strict error {msg:?} must name one of the injected lines {injected:?}"
    );

    // Lenient ingest skips exactly the injected lines...
    let quarantine = std::env::temp_dir().join(format!(
        "uplan_fault_injection_quarantine_{}.jsonl",
        std::process::id()
    ));
    let options = RawIngestOptions {
        quarantine: Some(quarantine.clone()),
        ..RawIngestOptions::lenient()
    };
    let mut lenient = PlanCorpus::new();
    let report = convert::ingest_raw_with(&dirty, &mut lenient, 4, &options).unwrap();
    assert_eq!(report.lines, clean_lines);
    let skipped: Vec<usize> = report.errors.iter().map(|e| e.line).collect();
    assert_eq!(
        skipped, injected,
        "error census must be exactly the injected lines"
    );

    // ...identically across thread counts and against the sequential
    // reference...
    let mut lenient_seq = PlanCorpus::new();
    let seq_report =
        convert::ingest_raw_sequential_with(&dirty, &mut lenient_seq, &options).unwrap();
    assert_eq!(report, seq_report);
    let mut lenient_one = PlanCorpus::new();
    let one_report = convert::ingest_raw_with(&dirty, &mut lenient_one, 1, &options).unwrap();
    assert_eq!(report, one_report);

    // ...and byte-identical to a strict ingest of the valid subset.
    let valid_subset: String = dirty
        .lines()
        .enumerate()
        .filter(|(i, _)| !injected.contains(&(i + 1)))
        .map(|(_, line)| format!("{line}\n"))
        .collect();
    let mut reference = PlanCorpus::new();
    let reference_report = convert::ingest_raw(&valid_subset, &mut reference, 4).unwrap();
    assert_eq!(reference_report.lines, clean_lines);
    assert_eq!(reference_report.census(), report.census());
    let bytes = reference.to_binary_indexed().unwrap();
    assert_eq!(lenient.to_binary_indexed().unwrap(), bytes);
    assert_eq!(lenient_seq.to_binary_indexed().unwrap(), bytes);
    assert_eq!(lenient_one.to_binary_indexed().unwrap(), bytes);

    // The quarantine file replays to the same failures: every record
    // fails again, none converts.
    let replay = std::fs::read_to_string(&quarantine).unwrap();
    let _ = std::fs::remove_file(&quarantine);
    assert_eq!(replay.lines().count(), injected.len());
    let mut empty = PlanCorpus::new();
    let replay_report =
        convert::ingest_raw_with(&replay, &mut empty, 2, &RawIngestOptions::lenient()).unwrap();
    assert_eq!(replay_report.lines, 0);
    assert_eq!(replay_report.errors.len(), injected.len());
    assert!(empty.is_empty());
}

#[test]
fn framed_encodings_of_the_dirty_dump_agree_with_jsonl() {
    // The same records under `---` separator framing ingest to the same
    // corpus and the same per-source census as the JSONL encoding.
    let clean = clean_dump();
    let (dirty, _) = inject::inject_garbage_lines(clean, SEED, 6);

    let mut jsonl = PlanCorpus::new();
    let jsonl_report =
        convert::ingest_raw_with(&dirty, &mut jsonl, 4, &RawIngestOptions::lenient()).unwrap();

    // Separator framing: a leading `---` selects the framing, then one
    // record per `---`-terminated frame.
    let separated: String = std::iter::once("---\n".to_owned())
        .chain(dirty.lines().map(|line| format!("{line}\n---\n")))
        .collect();
    assert_eq!(
        convert::sniff_framing(&separated),
        convert::RawFraming::Separator
    );
    let mut framed = PlanCorpus::new();
    let framed_report =
        convert::ingest_raw_with(&separated, &mut framed, 4, &RawIngestOptions::lenient()).unwrap();

    assert_eq!(framed_report.lines, jsonl_report.lines);
    assert_eq!(framed_report.errors.len(), jsonl_report.errors.len());
    assert_eq!(framed_report.census(), jsonl_report.census());
    assert_eq!(
        framed.to_binary_indexed().unwrap(),
        jsonl.to_binary_indexed().unwrap()
    );
}
