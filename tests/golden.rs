//! Golden-value regression tests for the plan-identity hot paths.
//!
//! These pin exact [`fingerprint`] outputs and [`tree_edit_distance`] values
//! for a fixed set of TPC-H-lite plans across every converter the pipeline
//! uses, so that refactors of the fingerprint/TED/conversion internals (e.g.
//! the identifier-interning migration) are provably behavior-preserving:
//! any change to these numbers breaks persisted QPG state and must be
//! deliberate.
//!
//! The inputs are deterministic: TPC-H-lite at scale 1 is generated from a
//! fixed seed, the engines plan deterministically, and the TiDB dialect's
//! random operator suffixes are derived from the fixed counter passed to
//! `to_table` — precisely the noise `fingerprint` must neutralize.
//!
//! To regenerate after an *intentional* change:
//! `cargo test --test golden -- --ignored --nocapture print_golden_values`

use minidb::profile::EngineProfile;
use uplan::convert::{convert, Source};
use uplan::core::fingerprint::fingerprint;
use uplan::core::ted::tree_edit_distance;
use uplan::core::UnifiedPlan;
use uplan::workloads::tpch;

/// The TPC-H-lite queries pinned here (1-based ids; a spread of shapes:
/// aggregation, join pipelines, subqueries).
const QUERIES: [usize; 4] = [1, 3, 5, 11];

/// One unified plan per (query, converter) pair, in a fixed order.
fn fixture_plans() -> Vec<(String, UnifiedPlan)> {
    let queries = tpch::queries();
    let mut pg = tpch::relational(EngineProfile::Postgres, 1);
    let mut tidb = tpch::relational(EngineProfile::TiDb, 1);
    let mut mysql = tpch::relational(EngineProfile::MySql, 1);
    let mut sqlite = tpch::relational(EngineProfile::Sqlite, 1);

    let mut plans = Vec::new();
    for &qid in &QUERIES {
        let (name, sql) = &queries[qid - 1];
        let native = pg.explain(sql).expect("pg plan");
        plans.push((
            format!("{name}/postgres_text"),
            convert(Source::PostgresText, &dialects::postgres::to_text(&native)).unwrap(),
        ));
        plans.push((
            format!("{name}/postgres_json"),
            convert(Source::PostgresJson, &dialects::postgres::to_json(&native)).unwrap(),
        ));
        let native = tidb.explain(sql).expect("tidb plan");
        plans.push((
            format!("{name}/tidb_table"),
            convert(Source::TidbTable, &dialects::tidb::to_table(&native, 7)).unwrap(),
        ));
        let native = mysql.explain(sql).expect("mysql plan");
        plans.push((
            format!("{name}/mysql_json"),
            convert(Source::MySqlJson, &dialects::mysql::to_json(&native)).unwrap(),
        ));
        plans.push((
            format!("{name}/mysql_table"),
            convert(Source::MySqlTable, &dialects::mysql::to_table(&native)).unwrap(),
        ));
        let native = sqlite.explain(sql).expect("sqlite plan");
        plans.push((
            format!("{name}/sqlite_eqp"),
            convert(Source::SqliteEqp, &dialects::sqlite::to_text(&native)).unwrap(),
        ));
    }
    plans
}

/// Expected `fingerprint()` of every fixture plan, in `fixture_plans` order
/// (fingerprint scheme v2: memoized symbol content hashes, see
/// `uplan_core::fingerprint::FINGERPRINT_SCHEME_VERSION`).
/// Regenerate with `print_golden_values` (see module docs).
const GOLDEN_FINGERPRINTS: [(&str, u64); 24] = [
    ("q1/postgres_text", 0x7bbbc1beabaf990c),
    ("q1/postgres_json", 0x4e56ed3a9c788478),
    ("q1/tidb_table", 0x1bdc23a3cf368d64),
    ("q1/mysql_json", 0x36c36e60f6551033),
    ("q1/mysql_table", 0x4b2eae283cbe64fe),
    ("q1/sqlite_eqp", 0x31c71c6f8d55bec0),
    ("q3/postgres_text", 0x38cf084a36b2b904),
    ("q3/postgres_json", 0xb5ac00fd4bfc0e13),
    ("q3/tidb_table", 0x344ee2d8527878d7),
    ("q3/mysql_json", 0xd0a14f02e01be4df),
    ("q3/mysql_table", 0x6d110e8e645aea1c),
    ("q3/sqlite_eqp", 0xf8e7696d6c77078f),
    ("q5/postgres_text", 0xec25d746819adf51),
    ("q5/postgres_json", 0x6b136f6a05a76c62),
    ("q5/tidb_table", 0xc8a36c95fc2408b6),
    ("q5/mysql_json", 0xa2ee22031eff6f3d),
    ("q5/mysql_table", 0xa3551f0dcc7c3af4),
    ("q5/sqlite_eqp", 0xb1b2682b884e1e99),
    ("q11/postgres_text", 0xa93e6cb83bc3c3f5),
    ("q11/postgres_json", 0xaa4fd5bf606e70bf),
    ("q11/tidb_table", 0xbe22644afd5ce794),
    ("q11/mysql_json", 0x0b372df130f83129),
    ("q11/mysql_table", 0x75d2a55c467d056e),
    ("q11/sqlite_eqp", 0x9e83596122f2708f),
];

/// Expected `tree_edit_distance` between consecutive fixture plans (pair i
/// is plans\[i\] vs plans\[i+1\]). Regenerate with `print_golden_values`.
const GOLDEN_TED: [usize; 23] = [
    0, 3, 4, 2, 2, 10, 0, 12, 13, 6, 4, 18, 0, 19, 20, 12, 10, 18, 0, 16, 15, 13, 10,
];

#[test]
fn fingerprints_match_golden_values() {
    let plans = fixture_plans();
    assert_eq!(plans.len(), GOLDEN_FINGERPRINTS.len());
    for ((label, plan), (expected_label, expected)) in plans.iter().zip(GOLDEN_FINGERPRINTS) {
        assert_eq!(label, expected_label, "fixture order changed");
        assert_eq!(
            fingerprint(plan).0,
            expected,
            "{label}: fingerprint diverged from golden value — this breaks \
             persisted QPG plan sets; regenerate goldens only if intentional"
        );
    }
}

#[test]
fn tree_edit_distances_match_golden_values() {
    let plans = fixture_plans();
    assert_eq!(plans.len(), GOLDEN_TED.len() + 1);
    for (i, pair) in plans.windows(2).enumerate() {
        let (la, a) = &pair[0];
        let (lb, b) = &pair[1];
        assert_eq!(
            tree_edit_distance(a, b),
            GOLDEN_TED[i],
            "ted({la}, {lb}) diverged from golden value"
        );
        // The metric axioms hold on every golden pair.
        assert_eq!(tree_edit_distance(a, b), tree_edit_distance(b, a));
        assert_eq!(tree_edit_distance(a, &a.clone()), 0);
    }
}

/// Exact version-1 encoding of a small reference plan. Version 1 is no
/// longer written (the encoder emits version 2) but corpora persisted by
/// earlier releases exist, so the *decoder* stays pinned to these bytes
/// forever: any change that stops them decoding breaks stored corpora and
/// must be deliberate.
const GOLDEN_BINARY_V1: [u8; 105] = [
    0x55, 0x50, 0x4c, 0x4e, 0x01, 0x06, 0x09, 0x48, 0x61, 0x73, 0x68, 0x5f, //
    0x4a, 0x6f, 0x69, 0x6e, 0x0f, 0x46, 0x75, 0x6c, 0x6c, 0x5f, 0x54, 0x61, //
    0x62, 0x6c, 0x65, 0x5f, 0x53, 0x63, 0x61, 0x6e, 0x04, 0x72, 0x6f, 0x77, //
    0x73, 0x0a, 0x49, 0x6e, 0x64, 0x65, 0x78, 0x5f, 0x53, 0x63, 0x61, 0x6e, //
    0x06, 0x66, 0x69, 0x6c, 0x74, 0x65, 0x72, 0x0f, 0x77, 0x6f, 0x72, 0x6b, //
    0x65, 0x72, 0x73, 0x5f, 0x70, 0x6c, 0x61, 0x6e, 0x6e, 0x65, 0x64, 0x01, //
    0x01, 0x02, 0x00, 0x00, 0x02, 0x00, 0x01, 0x01, 0x00, 0x02, 0x03, 0xd0, //
    0x0f, 0x00, 0x00, 0x03, 0x01, 0x02, 0x04, 0x05, 0x06, 0x63, 0x30, 0x20, //
    0x3c, 0x20, 0x35, 0x00, 0x01, 0x03, 0x05, 0x03, 0x04,
];

/// Exact version-2 encoding of the same plan: identical plan bytes, the
/// version varint at offset 4 is 2, and one trailing zero byte (the "no
/// index section" flag). Version 2 is still *written* — it is what
/// [`BinaryEncoder::unchecked`] emits — so these bytes pin both the
/// decoder and the unchecked writer. Any byte-level change invalidates
/// every stored corpus and must be deliberate (bump
/// `BINARY_CODEC_VERSION`, regenerate, and say so in the PR).
const GOLDEN_BINARY_V2: [u8; 106] = [
    0x55, 0x50, 0x4c, 0x4e, 0x02, 0x06, 0x09, 0x48, 0x61, 0x73, 0x68, 0x5f, //
    0x4a, 0x6f, 0x69, 0x6e, 0x0f, 0x46, 0x75, 0x6c, 0x6c, 0x5f, 0x54, 0x61, //
    0x62, 0x6c, 0x65, 0x5f, 0x53, 0x63, 0x61, 0x6e, 0x04, 0x72, 0x6f, 0x77, //
    0x73, 0x0a, 0x49, 0x6e, 0x64, 0x65, 0x78, 0x5f, 0x53, 0x63, 0x61, 0x6e, //
    0x06, 0x66, 0x69, 0x6c, 0x74, 0x65, 0x72, 0x0f, 0x77, 0x6f, 0x72, 0x6b, //
    0x65, 0x72, 0x73, 0x5f, 0x70, 0x6c, 0x61, 0x6e, 0x6e, 0x65, 0x64, 0x01, //
    0x01, 0x02, 0x00, 0x00, 0x02, 0x00, 0x01, 0x01, 0x00, 0x02, 0x03, 0xd0, //
    0x0f, 0x00, 0x00, 0x03, 0x01, 0x02, 0x04, 0x05, 0x06, 0x63, 0x30, 0x20, //
    0x3c, 0x20, 0x35, 0x00, 0x01, 0x03, 0x05, 0x03, 0x04, 0x00,
];

/// Exact version-3 (checksummed) encoding of the same plan: the version
/// varint is 3, a CRC32 follows the header (after `plan_count`), each
/// plan block carries a length varint and a trailing CRC32, and a tail
/// CRC32 covers the index flag. The *plan* bytes inside the block are
/// identical to v1/v2. Regenerate with `print_golden_values`.
const GOLDEN_BINARY_V3: [u8; 119] = [
    0x55, 0x50, 0x4c, 0x4e, 0x03, 0x06, 0x09, 0x48, 0x61, 0x73, 0x68, 0x5f, //
    0x4a, 0x6f, 0x69, 0x6e, 0x0f, 0x46, 0x75, 0x6c, 0x6c, 0x5f, 0x54, 0x61, //
    0x62, 0x6c, 0x65, 0x5f, 0x53, 0x63, 0x61, 0x6e, 0x04, 0x72, 0x6f, 0x77, //
    0x73, 0x0a, 0x49, 0x6e, 0x64, 0x65, 0x78, 0x5f, 0x53, 0x63, 0x61, 0x6e, //
    0x06, 0x66, 0x69, 0x6c, 0x74, 0x65, 0x72, 0x0f, 0x77, 0x6f, 0x72, 0x6b, //
    0x65, 0x72, 0x73, 0x5f, 0x70, 0x6c, 0x61, 0x6e, 0x6e, 0x65, 0x64, 0x01, //
    0x28, 0xd4, 0x55, 0x82, 0x21, 0x01, 0x02, 0x00, 0x00, 0x02, 0x00, 0x01, //
    0x01, 0x00, 0x02, 0x03, 0xd0, 0x0f, 0x00, 0x00, 0x03, 0x01, 0x02, 0x04, //
    0x05, 0x06, 0x63, 0x30, 0x20, 0x3c, 0x20, 0x35, 0x00, 0x01, 0x03, 0x05, //
    0x03, 0x04, 0x0f, 0xe3, 0x7d, 0x46, 0x00, 0x8d, 0xef, 0x02, 0xd2, //
];

fn golden_binary_plan() -> UnifiedPlan {
    use uplan::core::{PlanNode, Property};
    UnifiedPlan::with_root(
        PlanNode::join("Hash_Join")
            .with_child(
                PlanNode::producer("Full_Table_Scan")
                    .with_property(Property::cardinality("rows", 1000)),
            )
            .with_child(
                PlanNode::producer("Index_Scan")
                    .with_property(Property::configuration("filter", "c0 < 5")),
            ),
    )
    .with_plan_property(Property::status("workers_planned", 2))
}

#[test]
fn binary_codec_encoding_matches_golden_bytes() {
    use uplan::core::formats::binary;
    assert_eq!(binary::BINARY_CODEC_VERSION, 3);
    assert_eq!(binary::UNCHECKED_BINARY_VERSION, 2);
    assert_eq!(binary::MIN_SUPPORTED_BINARY_VERSION, 1);
    let bytes = binary::to_bytes(&golden_binary_plan()).unwrap();
    assert_eq!(
        bytes,
        GOLDEN_BINARY_V3.to_vec(),
        "binary codec v3 encoding drifted — persisted corpora would break"
    );
    // And the pinned bytes decode back to the reference plan, fingerprint
    // and all.
    let decoded = binary::from_bytes(&GOLDEN_BINARY_V3).unwrap();
    assert_eq!(decoded, golden_binary_plan());
    assert_eq!(fingerprint(&decoded), fingerprint(&golden_binary_plan()));
}

#[test]
fn unchecked_encoder_still_writes_golden_v2_bytes() {
    // `BinaryEncoder::unchecked()` is the compatibility writer: corpora it
    // persists must stay byte-identical to the pre-checksum v2 encoding,
    // and the decoder must keep accepting both pinned documents.
    use uplan::core::formats::binary;
    let mut enc = binary::BinaryEncoder::unchecked();
    enc.push(&golden_binary_plan()).unwrap();
    assert_eq!(
        enc.finish(),
        GOLDEN_BINARY_V2.to_vec(),
        "unchecked (v2) encoding drifted — persisted corpora would break"
    );
    let decoded = binary::from_bytes(&GOLDEN_BINARY_V2).unwrap();
    assert_eq!(decoded, golden_binary_plan());
    assert_eq!(fingerprint(&decoded), fingerprint(&golden_binary_plan()));
}

#[test]
fn checked_documents_reject_single_byte_corruption() {
    // Every byte of the golden v3 document is covered by a checksum (or is
    // structurally load-bearing): flipping any one bit must never decode
    // to a *wrong* plan silently — it either errors or, where the flip
    // lands in a checksummed-but-recoverable spot, still decodes to the
    // reference plan (impossible for a 1-bit flip: CRC32 detects all
    // single-bit errors, so every flip must error).
    use uplan::core::formats::binary;
    for offset in 0..GOLDEN_BINARY_V3.len() {
        let mut corrupt = GOLDEN_BINARY_V3.to_vec();
        corrupt[offset] ^= 0x01;
        assert!(
            binary::from_bytes(&corrupt).is_err(),
            "bit flip at byte {offset} decoded silently"
        );
    }
}

#[test]
fn binary_codec_still_decodes_golden_v1_documents() {
    // Corpora persisted before the v2 bump must keep loading, bit-compat
    // forever: the v1 golden bytes decode to the same plan the v2 bytes
    // encode.
    use uplan::core::formats::binary;
    let decoded = binary::from_bytes(&GOLDEN_BINARY_V1).unwrap();
    assert_eq!(decoded, golden_binary_plan());
    assert_eq!(fingerprint(&decoded), fingerprint(&golden_binary_plan()));
    // And a v1 document loads as a corpus through the index-rebuild path.
    let corpus = uplan::corpus::PlanCorpus::from_binary(&GOLDEN_BINARY_V1).unwrap();
    assert_eq!(corpus.len(), 1);
    assert!(!corpus.has_persisted_index());
}

#[test]
fn binary_codec_round_trips_every_golden_fixture() {
    // Fingerprint identity across the whole golden fixture set: what the
    // codec persists is exactly what fingerprinting sees.
    use uplan::core::formats::binary;
    for (label, plan) in fixture_plans() {
        let decoded = binary::from_bytes(&binary::to_bytes(&plan).unwrap()).unwrap();
        assert_eq!(decoded, plan, "{label}");
        assert_eq!(fingerprint(&decoded), fingerprint(&plan), "{label}");
    }
}

#[test]
fn fingerprints_are_insensitive_to_tidb_suffix_counters() {
    // Same plan serialized with different suffix counters must fingerprint
    // identically (the QPG parser bug the paper reports, pinned forever).
    let queries = tpch::queries();
    let mut tidb = tpch::relational(EngineProfile::TiDb, 1);
    let (_, sql) = &queries[2];
    let native = tidb.explain(sql).expect("tidb plan");
    let a = convert(Source::TidbTable, &dialects::tidb::to_table(&native, 7)).unwrap();
    let b = convert(
        Source::TidbTable,
        &dialects::tidb::to_table(&native, 104729),
    )
    .unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

/// Prints current values in the exact source shape of the golden tables.
#[test]
#[ignore = "generator for the golden tables above; run with --ignored --nocapture"]
fn print_golden_values() {
    let plans = fixture_plans();
    println!(
        "const GOLDEN_FINGERPRINTS: [(&str, u64); {}] = [",
        plans.len()
    );
    for (label, plan) in &plans {
        println!("    (\"{label}\", 0x{:016x}),", fingerprint(plan).0);
    }
    println!("];");
    println!("const GOLDEN_TED: [usize; {}] = [", plans.len() - 1);
    let teds: Vec<String> = plans
        .windows(2)
        .map(|p| tree_edit_distance(&p[0].1, &p[1].1).to_string())
        .collect();
    println!("    {},", teds.join(", "));
    println!("];");
    let bytes = uplan::core::formats::binary::to_bytes(&golden_binary_plan()).unwrap();
    println!("const GOLDEN_BINARY_V3: [u8; {}] = [", bytes.len());
    for chunk in bytes.chunks(12) {
        let row: Vec<String> = chunk.iter().map(|b| format!("{b:#04x}")).collect();
        println!("    {}, //", row.join(", "));
    }
    println!("];");
}
