//! Cross-crate integration tests: the full paper pipeline, end to end.

use minidb::profile::EngineProfile;
use minidb::Database;
use uplan::convert::{convert, Source};
use uplan::core::fingerprint::fingerprint;
use uplan::core::stats::CategoryCounts;
use uplan::core::OperationCategory;
use uplan::workloads::tpch;

/// Fig. 2, end to end: one query, three engines, three raw formats, one
/// unified representation, one fingerprint-based consumer.
#[test]
fn fig2_pipeline_end_to_end() {
    let mut unified = Vec::new();
    for profile in [
        EngineProfile::Postgres,
        EngineProfile::MySql,
        EngineProfile::TiDb,
    ] {
        let mut db = Database::new(profile);
        db.execute("CREATE TABLE t0 (c0 INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t0 VALUES ({i})")).unwrap();
        }
        let plan = db.explain("SELECT * FROM t0 WHERE c0 < 5").unwrap();
        let (source, raw) = match profile {
            EngineProfile::Postgres => (Source::PostgresText, dialects::postgres::to_text(&plan)),
            EngineProfile::MySql => (Source::MySqlTable, dialects::mysql::to_table(&plan)),
            _ => (Source::TidbTable, dialects::tidb::to_table(&plan, 4)),
        };
        unified.push(convert(source, &raw).unwrap());
    }
    // Every engine's plan contains a Full_Table_Scan producer on t0.
    for plan in &unified {
        let mut scan_found = false;
        plan.walk(&mut |n| {
            if n.operation.identifier == "Full_Table_Scan"
                && n.operation.category == OperationCategory::Producer
            {
                scan_found = true;
            }
        });
        assert!(scan_found, "{plan:#?}");
    }
    // TiDB's plan additionally carries the distributed Collect executor
    // (the paper's Fig. 2 walkthrough).
    let mut has_collect = false;
    unified[2].walk(&mut |n| {
        if n.operation.identifier == "Collect" {
            has_collect = true;
        }
    });
    assert!(has_collect);
}

/// Every unified plan produced by the full TPC-H pipeline survives a
/// round-trip through the strict grammar and the JSON schema.
#[test]
fn tpch_unified_plans_round_trip_all_formats() {
    let mut db = tpch::relational(EngineProfile::Postgres, 1);
    for (name, sql) in tpch::queries() {
        let plan = db.explain(&sql).unwrap();
        let unified = convert(Source::PostgresText, &dialects::postgres::to_text(&plan)).unwrap();
        let text = uplan::core::text::to_text(&unified);
        assert_eq!(
            uplan::core::text::from_text(&text).unwrap(),
            unified,
            "{name}: strict text round-trip"
        );
        let json = uplan::core::formats::unified::to_json(&unified);
        assert_eq!(
            uplan::core::formats::unified::from_json(&json).unwrap(),
            unified,
            "{name}: JSON round-trip"
        );
        let xml = uplan::core::formats::unified::to_xml(&unified);
        assert_eq!(
            uplan::core::formats::unified::from_xml(&xml).unwrap(),
            unified,
            "{name}: XML round-trip"
        );
        let verbose = uplan::core::display::to_display_verbose(&unified);
        assert_eq!(
            uplan::core::display::from_display(&verbose).unwrap(),
            unified,
            "{name}: display round-trip"
        );
    }
}

/// The four relational profiles agree on results for every TPC-H query
/// (differential check across engine profiles).
#[test]
fn tpch_results_agree_across_profiles() {
    let mut reference = tpch::relational(EngineProfile::Postgres, 1);
    let mut others: Vec<Database> = [
        EngineProfile::MySql,
        EngineProfile::TiDb,
        EngineProfile::Sqlite,
    ]
    .into_iter()
    .map(|p| tpch::relational(p, 1))
    .collect();
    for (name, sql) in tpch::queries() {
        let expected = reference.execute(&sql).unwrap();
        for other in &mut others {
            let got = other.execute(&sql).unwrap();
            assert!(
                expected.same_multiset(&got),
                "{name}: {} vs {} rows on {}",
                expected.rows.len(),
                got.rows.len(),
                other.profile()
            );
        }
    }
}

/// Fingerprints are insensitive to engine-side noise (estimates change with
/// statistics, TiDB ids change per statement) but sensitive to structure.
#[test]
fn fingerprints_are_stable_and_structural() {
    let mut db = Database::new(EngineProfile::TiDb);
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    for i in 0..40 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 4))
            .unwrap();
    }
    let plan_of = |db: &mut Database, seed: u32, sql: &str| {
        let plan = db.explain(sql).unwrap();
        convert(Source::TidbTable, &dialects::tidb::to_table(&plan, seed)).unwrap()
    };
    let a = plan_of(&mut db, 1, "SELECT a FROM t WHERE a < 10");
    // More data → different estimates; different id seed → different suffixes.
    for i in 40..80 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 4))
            .unwrap();
    }
    let b = plan_of(&mut db, 50, "SELECT a FROM t WHERE a < 10");
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // An index changes the plan structure → new fingerprint.
    db.execute("CREATE INDEX ia ON t(a)").unwrap();
    let c = plan_of(&mut db, 99, "SELECT a FROM t WHERE a < 10");
    assert_ne!(fingerprint(&a), fingerprint(&c));
}

/// The A.3 census machinery agrees with hand-counted plans.
#[test]
fn census_counts_are_consistent_with_plans() {
    let mut db = tpch::relational(EngineProfile::Postgres, 1);
    let q3 = &tpch::queries()[2].1;
    let plan = db.explain(q3).unwrap();
    let unified = convert(Source::PostgresText, &dialects::postgres::to_text(&plan)).unwrap();
    let counts = CategoryCounts::of(&unified);
    // q3 references customer, orders, lineitem once each.
    assert_eq!(counts.get(&OperationCategory::Producer), 3, "{unified:#?}");
    assert!(counts.get(&OperationCategory::Join) >= 2);
    assert!(counts.get(&OperationCategory::Folder) >= 1);
}

/// Forward compatibility (paper §IV-B): an extended plan with an unknown
/// category and the LLM Join operation is still parseable and processable
/// by every consumer in the workspace.
#[test]
fn llm_join_extension_flows_through_consumers() {
    let input = "Operation: Join->LLM_Join, Configuration->model: \"gpt-codex\" --children--> {\
                 Operation: Producer->Full_Table_Scan, Configuration->name_object: \"docs\" ,\
                 Operation: Mapper->Embedding_Scan }";
    let plan = uplan::core::text::from_text(input).unwrap();
    // stats
    let counts = CategoryCounts::of(&plan);
    assert_eq!(counts.get(&OperationCategory::Join), 1);
    assert_eq!(
        counts.get(&OperationCategory::Extension("Mapper".into())),
        1
    );
    // fingerprinting
    let _ = fingerprint(&plan);
    // visualization (generic handling of unknown categories)
    let html = uplan::viz::html::render(&[("extended", &plan)]);
    assert!(html.contains("LLM Join"));
    // serialization back out
    let text = uplan::core::text::to_text(&plan);
    assert_eq!(uplan::core::text::from_text(&text).unwrap(), plan);
}

/// All nine studied dialects convert through the single `convert` entry.
#[test]
fn all_nine_dialects_convert() {
    // Relational profiles cover PG text/JSON, MySQL JSON/table, TiDB table,
    // SQLite EQP, SparkSQL text, SQL Server XML.
    let mut db = tpch::relational(EngineProfile::Postgres, 1);
    let q4 = &tpch::queries()[3].1;
    let plan = db.explain(q4).unwrap();
    let cases: Vec<(Source, String)> = vec![
        (Source::PostgresText, dialects::postgres::to_text(&plan)),
        (Source::PostgresJson, dialects::postgres::to_json(&plan)),
        (Source::MySqlJson, dialects::mysql::to_json(&plan)),
        (Source::MySqlTable, dialects::mysql::to_table(&plan)),
        (Source::TidbTable, dialects::tidb::to_table(&plan, 2)),
        (Source::SqliteEqp, dialects::sqlite::to_text(&plan)),
        (Source::SparkText, dialects::sparksql::to_text(&plan)),
        (Source::SqlServerXml, dialects::sqlserver::to_xml(&plan)),
        (
            Source::InfluxText,
            dialects::influxdb::to_text(&dialects::influxdb::InfluxStats::synthetic(2, 8)),
        ),
    ];
    for (source, raw) in &cases {
        let unified = convert(*source, raw).unwrap_or_else(|e| panic!("{source:?}: {e}\n{raw}"));
        if *source == Source::InfluxText {
            assert!(unified.root.is_none());
        } else {
            assert!(unified.operation_count() >= 1, "{source:?}");
        }
    }
    // MongoDB + Neo4j from their engines.
    let mut store = minidoc::DocStore::new();
    tpch::load_document(&mut store, 1, 1);
    let (_, doc_plan) = store.find(&tpch::mongo_queries()[0].1);
    assert!(
        convert(Source::MongoJson, &dialects::mongodb::to_json(&doc_plan))
            .unwrap()
            .operation_count()
            >= 1
    );
    let mut graph = minigraph::GraphStore::new();
    tpch::load_graph(&mut graph, 1, 1);
    let (_, graph_plan) = graph.run(&tpch::graph_queries()[0].1);
    assert!(
        convert(Source::Neo4jTable, &dialects::neo4j::to_table(&graph_plan))
            .unwrap()
            .operation_count()
            >= 1
    );
}
