//! Property-based tests for the zero-copy JSON layer.
//!
//! The borrowed tree parser, the owned escape hatch and the pull reader
//! must agree with each other and with the writer on every representable
//! document; the units below additionally pin escape/surrogate decoding,
//! integer extremes, nesting bounds and malformed-input error offsets.

use proptest::prelude::*;
use uplan::core::formats::json::{self, JsonEvent, JsonReader, JsonValue, OwnedJsonValue};
use uplan::core::Error;

/// Strings with a healthy dose of escape-worthy content: quotes,
/// backslashes, control characters, multi-byte UTF-8 and astral-plane
/// characters (which serialize raw but decode through `\u` pairs too).
fn arb_string() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9 _.:/()<>=-]{0,24}",
        ("[a-z]{0,8}", arb_special_piece(), "[a-z]{0,8}")
            .prop_map(|(a, mid, b)| format!("{a}{mid}{b}")),
    ]
}

fn arb_special_piece() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("\""),
        Just("\\"),
        Just("/"),
        Just("\n"),
        Just("\r"),
        Just("\t"),
        Just("\u{8}"),
        Just("\u{c}"),
        Just("\u{1}"),
        Just("\u{1f}"),
        Just("é"),
        Just("汉字"),
        Just("😀"),
        Just("\u{10FFFF}"),
    ]
}

fn arb_json() -> impl Strategy<Value = OwnedJsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<i64>().prop_map(JsonValue::Int),
        Just(JsonValue::Int(i64::MIN)),
        Just(JsonValue::Int(i64::MAX)),
        // Finite floats only: JSON has no NaN/Infinity.
        (-1e15f64..1e15).prop_map(JsonValue::Float),
        arb_string().prop_map(JsonValue::from),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::vec((arb_string(), inner), 0..4).prop_map(|members| {
                JsonValue::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Borrowed parse inverts both writers.
    #[test]
    fn compact_and_pretty_round_trip(doc in arb_json()) {
        let compact = doc.to_compact();
        prop_assert_eq!(json::parse(&compact).unwrap(), doc.clone());
        let pretty = doc.to_pretty();
        prop_assert_eq!(json::parse(&pretty).unwrap(), doc);
    }

    /// Borrowed parse ≡ owned parse: `into_owned` changes representation,
    /// never value, and the owned tree outlives the input buffer.
    #[test]
    fn borrowed_equals_owned(doc in arb_json()) {
        let text = doc.to_compact();
        let borrowed = json::parse(&text).unwrap();
        let owned = json::parse_owned(&text).unwrap();
        prop_assert_eq!(&borrowed, &owned);
        prop_assert_eq!(borrowed.into_owned(), owned);
    }

    /// The pull reader materializes exactly the tree the parser builds, and
    /// leaves the document fully consumed.
    #[test]
    fn reader_equals_parser(doc in arb_json()) {
        let text = doc.to_pretty();
        let mut reader = JsonReader::new(&text);
        let value = reader.read_value().unwrap();
        reader.finish().unwrap();
        prop_assert_eq!(value, json::parse(&text).unwrap());
    }

    /// `skip_value` consumes exactly one value.
    #[test]
    fn skip_value_consumes_one_value(doc in arb_json()) {
        let text = doc.to_compact();
        let mut reader = JsonReader::new(&text);
        reader.skip_value().unwrap();
        reader.finish().unwrap();
    }

    /// The event stream is balanced and terminates in Eof.
    #[test]
    fn event_stream_is_balanced(doc in arb_json()) {
        let text = doc.to_compact();
        let mut reader = JsonReader::new(&text);
        let mut depth = 0usize;
        loop {
            match reader.next_event().unwrap() {
                JsonEvent::ObjectStart | JsonEvent::ArrayStart => depth += 1,
                JsonEvent::ObjectEnd | JsonEvent::ArrayEnd => depth -= 1,
                JsonEvent::Eof => break,
                _ => {}
            }
        }
        prop_assert_eq!(depth, 0);
    }
}

// ---------------------------------------------------------------------------
// Edge-case units
// ---------------------------------------------------------------------------

#[test]
fn escape_decoding_matrix() {
    for (text, expected) in [
        (r#""\"\\\/\n\r\t\b\f""#, "\"\\/\n\r\t\u{8}\u{c}"),
        (r#""Aé汉""#, "Aé汉"),
        // Astral plane: surrogate-pair escape and raw UTF-8 agree.
        ("\"\\ud834\\udd1e\"", "𝄞"),
        ("\"𝄞\"", "𝄞"),
        ("\"\\u001f\"", "\u{1f}"),
    ] {
        assert_eq!(
            json::parse(text).unwrap(),
            JsonValue::Str(expected.into()),
            "{text}"
        );
    }
}

#[test]
fn surrogate_errors() {
    // Lone high, unpaired high, lone low, malformed low.
    for bad in [
        r#""\ud800""#,
        r#""\ud800x""#,
        r#""\udc00""#,
        r#""\ud800A""#,
        r#""\uZZZZ""#,
    ] {
        assert!(json::parse(bad).is_err(), "{bad} should fail");
    }
}

#[test]
fn integer_extremes_and_overflow() {
    assert_eq!(
        json::parse("-9223372036854775808").unwrap(),
        JsonValue::Int(i64::MIN)
    );
    assert_eq!(
        json::parse("9223372036854775807").unwrap(),
        JsonValue::Int(i64::MAX)
    );
    // One beyond the extremes overflows into floats, not errors.
    assert!(matches!(
        json::parse("9223372036854775808").unwrap(),
        JsonValue::Float(_)
    ));
    assert!(matches!(
        json::parse("-9223372036854775809").unwrap(),
        JsonValue::Float(_)
    ));
    // And the extremes survive a write/parse round-trip.
    let doc = JsonValue::Array(vec![JsonValue::Int(i64::MIN), JsonValue::Int(i64::MAX)]);
    assert_eq!(json::parse(&doc.to_compact()).unwrap(), doc);
}

#[test]
fn nesting_bound_is_exact_enough() {
    let deep = |n: usize| format!("{}{}", "[".repeat(n), "]".repeat(n));
    assert!(json::parse(&deep(500)).is_ok());
    assert!(json::parse(&deep(600)).is_err());
}

#[test]
fn malformed_inputs_report_exact_offsets() {
    for (doc, expected_offset) in [
        // value_start on the closing brace.
        ("{\"a\":}", 5),
        // Element expected after the comma.
        ("[1,]", 3),
        // Bad literal at the start.
        ("nul", 0),
        // Value position after padded colon.
        ("{\"a\" :  x}", 8),
        // Raw control character inside a string.
        ("\"ab\u{1}c\"", 3),
        // Missing comma between members.
        ("{\"a\":1 \"b\":2}", 7),
        // Trailing garbage after the document.
        ("{} {}", 3),
        // Missing colon.
        ("{\"a\" 1}", 5),
    ] {
        match json::parse(doc) {
            Err(Error::Parse { offset, .. }) => {
                assert_eq!(offset, expected_offset, "offset for {doc:?}");
            }
            other => panic!("{doc:?}: expected a parse error, got {other:?}"),
        }
    }
    // Truncated input is an EOF error, not an offset error.
    assert!(matches!(json::parse(""), Err(Error::UnexpectedEof(_))));
    assert!(matches!(
        json::parse("\"\\u00"),
        Err(Error::UnexpectedEof(_))
    ));
}

#[test]
fn reader_reports_the_same_offsets_as_the_parser() {
    for doc in [
        "{\"a\":}",
        "[1,]",
        "nul",
        "{\"a\" :  x}",
        "\"ab\u{1}c\"",
        "{\"a\":1 \"b\":2}",
        "{} {}",
        "{\"a\" 1}",
    ] {
        let parser_err = json::parse(doc).unwrap_err();
        let mut reader = JsonReader::new(doc);
        let mut reader_err = None;
        for _ in 0..64 {
            match reader.next_event() {
                Err(e) => {
                    reader_err = Some(e);
                    break;
                }
                Ok(JsonEvent::Eof) => {
                    reader_err = reader.finish().err();
                    break;
                }
                Ok(_) => {}
            }
        }
        assert_eq!(Some(parser_err), reader_err, "divergence on {doc:?}");
    }
}

#[test]
fn borrowed_spans_only_allocate_for_escapes() {
    let text = r#"{"plain": "span", "esc\taped": "a\nb", "nested": ["x", "y\\z"]}"#;
    let doc = json::parse(text).unwrap();
    let members = doc.as_object().unwrap();
    assert!(matches!(&members[0].0, std::borrow::Cow::Borrowed(_)));
    assert!(matches!(
        &members[0].1,
        JsonValue::Str(std::borrow::Cow::Borrowed(_))
    ));
    assert!(matches!(&members[1].0, std::borrow::Cow::Owned(_)));
    assert!(matches!(
        &members[1].1,
        JsonValue::Str(std::borrow::Cow::Owned(_))
    ));
    let nested = members[2].1.as_array().unwrap();
    assert!(matches!(
        &nested[0],
        JsonValue::Str(std::borrow::Cow::Borrowed(_))
    ));
    assert!(matches!(
        &nested[1],
        JsonValue::Str(std::borrow::Cow::Owned(_))
    ));
}
