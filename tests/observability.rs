//! End-to-end observability: the `/metrics` exposition of a live daemon
//! state and the process-global ingest instrumentation, exercised through
//! the public facade the way an operator's scrape job would see them.
//!
//! Two contracts pinned here:
//!
//! 1. **Per-state exactness** — HTTP request counters live on the
//!    [`ServeMetrics`] instance registry, so a state's exposition reports
//!    exactly the requests *that state* served (other states in the same
//!    process do not bleed in), and a `/metrics` scrape never counts
//!    itself in the body it returns.
//! 2. **Global ingest deltas** — `convert::ingest_raw` advances the
//!    process-global counters by exactly the records it converted, with
//!    lenient-mode skips attributed per pipeline stage.
//!
//! [`ServeMetrics`]: uplan::serve::ServeMetrics

use std::sync::Arc;

use uplan::convert::{ingest_raw, ingest_raw_with, RawIngestOptions};
use uplan::corpus::{PlanCorpus, DEFAULT_PENDING_CAPACITY};
use uplan::serve::http::HttpRequest;
use uplan::serve::{handle, ServeState};
use uplan::testing::fixtures::{raw_dump_line, DialectFleet};
use uplan_bench::corpus_fixture;

fn get(path: &str) -> HttpRequest {
    HttpRequest {
        method: "GET".into(),
        path: path.into(),
        query: Vec::new(),
        body: Vec::new(),
    }
}

/// Current value of a global counter, zero when nothing registered it yet.
fn global_counter(name: &str, labels: &[(&str, &str)]) -> u64 {
    uplan::obs::global()
        .find_counter(name, labels)
        .map_or(0, |c| c.get())
}

#[test]
fn a_state_exposes_exactly_the_requests_it_served() {
    let corpus = corpus_fixture::derived_corpus(60, 0x0b5e_0001);
    let state = ServeState::new(corpus, DEFAULT_PENDING_CAPACITY, 2);
    let service = Arc::clone(state.service());
    let mut reader = service.reader();

    let probe = uplan::core::formats::unified::to_json(&corpus_fixture::derived_stream(1, 0x9e)[0]);
    let knn = HttpRequest {
        method: "POST".into(),
        path: "/knn".into(),
        query: Vec::new(),
        body: format!("{{\"k\": 3, \"probe\": {probe}}}").into_bytes(),
    };
    for _ in 0..2 {
        let response = handle(&state, &mut reader, &knn);
        assert_eq!(response.status, 200, "{}", response.body);
        assert!(
            response.request_id.is_some(),
            "every response carries an id"
        );
    }
    // One approximate k-NN: exercises the candidate-set histogram (exact
    // queries never record it) and answers with the cost breakdown.
    let approx = HttpRequest {
        method: "POST".into(),
        path: "/knn".into(),
        query: Vec::new(),
        body: format!("{{\"k\": 3, \"mode\": \"approx\", \"probe\": {probe}}}").into_bytes(),
    };
    let response = handle(&state, &mut reader, &approx);
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(
        response.body.contains("\"cost\"") && response.body.contains("\"candidates_considered\""),
        "{}",
        response.body
    );
    let stats = handle(&state, &mut reader, &get("/stats"));
    assert_eq!(stats.status, 200, "{}", stats.body);

    // First scrape: exact counts for what was served, and the scrape body
    // is rendered before the scrape itself is recorded.
    let scrape = handle(&state, &mut reader, &get("/metrics"));
    assert_eq!(scrape.status, 200);
    assert_eq!(scrape.content_type, "text/plain; version=0.0.4");
    let body = &scrape.body;
    assert!(body.contains("uplan_http_requests_total{endpoint=\"knn\"} 3"));
    assert!(body.contains("uplan_http_requests_total{endpoint=\"stats\"} 1"));
    assert!(body.contains("uplan_http_requests_total{endpoint=\"metrics\"} 0"));
    assert!(body.contains("uplan_http_request_latency_us_count{endpoint=\"knn\"} 3"));
    assert!(body.contains("uplan_build_info{"));
    assert!(body.contains("uplan_uptime_seconds"));
    // The query-cost families from the process-global section: partial
    // evaluations (early-exit kernel savings) are registered per query
    // kind, and the candidate-set histogram recorded the one approximate
    // request this binary made (exact queries never record it).
    assert!(body.contains("uplan_query_partial_evals_total{kind=\"knn\"}"));
    assert!(body.contains("uplan_query_candidate_set_size_count{kind=\"knn\"} 1"));
    assert!(body.contains("uplan_query_candidate_set_size_count{kind=\"radius\"} 0"));
    // (The process-global section rides along in the same exposition;
    // its families appear once something registers them — the daemon
    // round-trip test in uplan-serve pins that concatenation.)

    // Second scrape observes the first.
    let scrape = handle(&state, &mut reader, &get("/metrics"));
    assert!(scrape
        .body
        .contains("uplan_http_requests_total{endpoint=\"metrics\"} 1"));

    // A second state in the same process starts from zero: HTTP series
    // are per-instance, not process-global.
    let other = ServeState::new(corpus_fixture::derived_corpus(10, 0x0b5e_0002), 8, 1);
    assert_eq!(other.metrics().requests(), 0);
    assert!(other
        .metrics()
        .registry()
        .encode_prometheus()
        .contains("uplan_http_requests_total{endpoint=\"knn\"} 0"));
}

#[test]
fn ingest_advances_the_global_counters_by_exact_deltas() {
    let mut fleet = DialectFleet::new();
    let records: Vec<(uplan::convert::Source, String)> = fleet.relational(3, 17);
    let lines = records.len() as u64;
    let first_source = records[0].0;
    let dump: String = records
        .iter()
        .map(|(source, text)| raw_dump_line(*source, text))
        .collect::<Vec<_>>()
        .join("\n");

    let records_before = global_counter("uplan_ingest_records_total", &[]);
    let batches_before = global_counter("uplan_ingest_batches_total", &[]);
    let source_before = global_counter(
        "uplan_convert_records_total",
        &[("source", first_source.name())],
    );

    let mut corpus = PlanCorpus::new();
    let report = ingest_raw(&dump, &mut corpus, 2).expect("clean fixture dump ingests");
    assert_eq!(report.lines as u64, lines);

    // This test is the only ingest caller in this binary, so the deltas
    // are exact (test binaries are separate processes).
    assert_eq!(
        global_counter("uplan_ingest_records_total", &[]) - records_before,
        lines
    );
    assert!(global_counter("uplan_ingest_batches_total", &[]) > batches_before);
    assert!(
        global_counter(
            "uplan_convert_records_total",
            &[("source", first_source.name())]
        ) > source_before
    );

    // A lenient ingest of garbage lands in the skip counters (attributed
    // to the rejecting pipeline stage) and, with a quarantine file set,
    // in the quarantine counter.
    let kinds = ["frame", "classify", "convert"];
    let skipped_before: Vec<u64> = kinds
        .iter()
        .map(|&k| global_counter("uplan_ingest_skipped_total", &[("kind", k)]))
        .collect();
    let quarantined_before = global_counter("uplan_ingest_quarantined_total", &[]);
    let quarantine =
        std::env::temp_dir().join(format!("{}_obs_quarantine.jsonl", std::process::id()));
    let dirty = format!("{dump}\nnot a raw dump record at all");
    let options = RawIngestOptions {
        quarantine: Some(quarantine.clone()),
        ..RawIngestOptions::lenient()
    };
    let report = ingest_raw_with(&dirty, &mut PlanCorpus::new(), 2, &options)
        .expect("lenient mode skips the garbage line");
    std::fs::remove_file(&quarantine).ok();
    assert_eq!(report.errors.len(), 1);
    let rejected_by = report.errors[0].kind.name();
    for (&kind, &before) in kinds.iter().zip(&skipped_before) {
        let delta = global_counter("uplan_ingest_skipped_total", &[("kind", kind)]) - before;
        assert_eq!(delta, u64::from(kind == rejected_by), "kind {kind}");
    }
    assert_eq!(
        global_counter("uplan_ingest_quarantined_total", &[]) - quarantined_before,
        1
    );

    // The JSON exposition carries the same families.
    let json = uplan::obs::global().encode_json().to_compact();
    assert!(json.contains("\"uplan_ingest_records_total\""));
    assert!(json.contains("\"uplan_ingest_batch_records\""));
}
