//! Property-based tests on the unified representation's invariants.

use proptest::prelude::*;
use uplan::core::fingerprint::fingerprint;
use uplan::core::{
    OperationCategory, PlanNode, Property, PropertyCategory, Symbol, UnifiedPlan, Value,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks equality-based round-trip checks.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 _.<>=()'%-]{0,24}".prop_map(Value::Str),
    ]
}

fn arb_op_category() -> impl Strategy<Value = OperationCategory> {
    prop_oneof![
        Just(OperationCategory::Producer),
        Just(OperationCategory::Combinator),
        Just(OperationCategory::Join),
        Just(OperationCategory::Folder),
        Just(OperationCategory::Projector),
        Just(OperationCategory::Executor),
        Just(OperationCategory::Consumer),
        // Extension categories must not collide with canonical spellings,
        // or parsing canonicalizes them and round-trip equality fails.
        "[A-Z][a-zA-Z0-9_]{0,8}"
            .prop_filter("not a canonical category", |s| {
                OperationCategory::CANONICAL.iter().all(|c| c.name() != s)
            })
            .prop_map(|s| OperationCategory::Extension(Symbol::intern(&s))),
    ]
}

fn arb_prop_category() -> impl Strategy<Value = PropertyCategory> {
    prop_oneof![
        Just(PropertyCategory::Cardinality),
        Just(PropertyCategory::Cost),
        Just(PropertyCategory::Configuration),
        Just(PropertyCategory::Status),
    ]
}

fn arb_property() -> impl Strategy<Value = Property> {
    (arb_prop_category(), "[a-z][a-z0-9_]{0,12}", arb_value()).prop_map(
        |(category, identifier, value)| Property {
            category,
            identifier: Symbol::intern(&identifier),
            value,
        },
    )
}

fn arb_node() -> impl Strategy<Value = PlanNode> {
    let leaf = (
        arb_op_category(),
        "[A-Z][a-zA-Z0-9_]{0,16}",
        prop::collection::vec(arb_property(), 0..4),
    )
        .prop_map(|(category, identifier, properties)| PlanNode {
            operation: uplan::core::Operation {
                category,
                identifier: Symbol::intern(&identifier),
            },
            properties,
            children: Vec::new(),
        });
    leaf.prop_recursive(4, 24, 3, |inner| {
        (
            arb_op_category(),
            "[A-Z][a-zA-Z0-9_]{0,16}",
            prop::collection::vec(arb_property(), 0..4),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(category, identifier, properties, children)| PlanNode {
                operation: uplan::core::Operation {
                    category,
                    identifier: Symbol::intern(&identifier),
                },
                properties,
                children,
            })
    })
}

fn arb_plan() -> impl Strategy<Value = UnifiedPlan> {
    (
        prop::option::of(arb_node()),
        prop::collection::vec(arb_property(), 0..4),
    )
        .prop_map(|(root, properties)| UnifiedPlan { root, properties })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The strict grammar round-trips every representable plan.
    #[test]
    fn strict_text_round_trips(plan in arb_plan()) {
        let text = uplan::core::text::to_text(&plan);
        let parsed = uplan::core::text::from_text(&text).unwrap();
        prop_assert_eq!(parsed, plan);
    }

    /// The unified JSON schema round-trips every representable plan.
    #[test]
    fn json_round_trips(plan in arb_plan()) {
        let json = uplan::core::formats::unified::to_json(&plan);
        let parsed = uplan::core::formats::unified::from_json(&json).unwrap();
        prop_assert_eq!(parsed, plan);
    }

    /// The streaming reader path and the tree path of the unified JSON
    /// format agree on every representable plan.
    #[test]
    fn streaming_and_tree_json_paths_agree(plan in arb_plan()) {
        let json = uplan::core::formats::unified::to_json(&plan);
        let streamed = uplan::core::formats::unified::from_json(&json).unwrap();
        let doc = uplan::core::formats::json::parse(&json).unwrap();
        let via_tree = uplan::core::formats::unified::from_json_value(&doc).unwrap();
        prop_assert_eq!(streamed, via_tree);
    }

    /// The XML schema round-trips every representable plan.
    #[test]
    fn xml_round_trips(plan in arb_plan()) {
        let xml = uplan::core::formats::unified::to_xml(&plan);
        let parsed = uplan::core::formats::unified::from_xml(&xml).unwrap();
        prop_assert_eq!(parsed, plan);
    }

    /// The verbose display format round-trips every representable plan.
    #[test]
    fn display_round_trips(plan in arb_plan()) {
        let text = uplan::core::display::to_display_verbose(&plan);
        let parsed = uplan::core::display::from_display(&text).unwrap();
        prop_assert_eq!(parsed, plan);
    }

    /// The binary codec round-trips every representable plan, agrees plan-
    /// for-plan with the JSON round-trip, and preserves fingerprints — the
    /// "binary round-trip ≡ JSON round-trip" contract a persisted corpus
    /// depends on.
    #[test]
    fn binary_round_trip_equals_json_round_trip(plan in arb_plan()) {
        let bytes = uplan::core::formats::binary::to_bytes(&plan).unwrap();
        let from_binary = uplan::core::formats::binary::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&from_binary, &plan);
        let json = uplan::core::formats::unified::to_json(&plan);
        let from_json = uplan::core::formats::unified::from_json(&json).unwrap();
        prop_assert_eq!(&from_binary, &from_json);
        prop_assert_eq!(fingerprint(&from_binary), fingerprint(&plan));
    }

    /// A corpus round-trips through both persistence formats with plan
    /// order, contents and fingerprints intact.
    #[test]
    fn corpus_persistence_round_trips(plans in prop::collection::vec(arb_plan(), 0..24)) {
        let mut corpus = uplan::corpus::PlanCorpus::new();
        for plan in &plans {
            corpus.observe(plan);
        }
        let binary = uplan::corpus::PlanCorpus::from_binary(&corpus.to_binary().unwrap()).unwrap();
        let jsonl = uplan::corpus::PlanCorpus::from_jsonl(&corpus.to_jsonl()).unwrap();
        prop_assert_eq!(binary.len(), corpus.len());
        prop_assert_eq!(jsonl.len(), corpus.len());
        for (id, plan) in corpus.iter() {
            prop_assert_eq!(binary.plan(id), plan);
            prop_assert_eq!(jsonl.plan(id), plan);
            prop_assert_eq!(binary.fingerprint(id), corpus.fingerprint(id));
            prop_assert_eq!(jsonl.fingerprint(id), corpus.fingerprint(id));
        }
    }

    /// A v1-encoded document decodes identically under the current
    /// decoder: v1 and v2 differ only in the version varint and the
    /// trailing index flag (v3 adds checksums, so it is derived from the
    /// unchecked encoder), so rewriting a no-index v2 document as v1
    /// byte-for-byte must change nothing about what it decodes to.
    #[test]
    fn v1_documents_decode_identically_under_the_v2_decoder(
        plans in prop::collection::vec(arb_plan(), 0..12),
    ) {
        let mut enc = uplan::core::formats::binary::BinaryEncoder::unchecked();
        for plan in &plans {
            enc.push(plan).unwrap();
        }
        let v2 = enc.finish();
        let mut v1 = v2.clone();
        prop_assert_eq!(v1[4], 2u8, "version varint");
        prop_assert_eq!(v1.pop(), Some(0u8), "no-index flag");
        v1[4] = 1;
        let decode = |bytes: &[u8]| {
            let mut dec = uplan::core::formats::binary::BinaryDecoder::new(bytes).unwrap();
            let mut out = Vec::new();
            while let Some(plan) = dec.next_plan().unwrap() {
                out.push(plan);
            }
            out
        };
        prop_assert_eq!(decode(&v1), decode(&v2));
        prop_assert_eq!(decode(&v1), plans);
    }

    /// An indexed corpus document round-trips with zero TED evaluations on
    /// load, and the adopted index answers queries exactly like the index
    /// it was persisted from — same matches, same counted evaluations.
    #[test]
    fn indexed_corpus_round_trips_with_zero_load_evals(
        plans in prop::collection::vec(arb_plan(), 0..24),
        radius in 0u32..4,
        k in 1usize..6,
    ) {
        let mut corpus = uplan::corpus::PlanCorpus::new();
        for plan in &plans {
            corpus.observe(plan);
        }
        let loaded =
            uplan::corpus::PlanCorpus::from_binary(&corpus.to_binary_indexed().unwrap()).unwrap();
        prop_assert_eq!(loaded.index_evals(), 0);
        prop_assert_eq!(loaded.len(), corpus.len());
        prop_assert!(loaded.has_persisted_index());
        for (id, plan) in corpus.iter() {
            prop_assert_eq!(loaded.plan(id), plan);
            prop_assert_eq!(loaded.fingerprint(id), corpus.fingerprint(id));
        }
        for probe in plans.iter().take(4) {
            let within = uplan::corpus::QueryRequest::radius(radius).with_probe(probe.clone());
            let knn = uplan::corpus::QueryRequest::knn(k).with_probe(probe.clone());
            prop_assert_eq!(
                corpus.execute(&within).unwrap(),
                loaded.execute(&within).unwrap()
            );
            prop_assert_eq!(corpus.execute(&knn).unwrap(), loaded.execute(&knn).unwrap());
        }
    }

    /// Fingerprints are a function of structure: serialization and
    /// re-parsing never change them, and Cost/Cardinality/Status values
    /// never affect them.
    #[test]
    fn fingerprints_survive_round_trips_and_ignore_volatile_values(
        plan in arb_plan(),
        noise in any::<i64>(),
    ) {
        let original = fingerprint(&plan);
        let text = uplan::core::text::to_text(&plan);
        let reparsed = uplan::core::text::from_text(&text).unwrap();
        prop_assert_eq!(fingerprint(&reparsed), original);

        // Perturb every volatile property value.
        let mut noisy = plan.clone();
        fn perturb(node: &mut PlanNode, noise: i64) {
            for p in &mut node.properties {
                if matches!(
                    p.category,
                    PropertyCategory::Cardinality | PropertyCategory::Cost | PropertyCategory::Status
                ) {
                    p.value = Value::Int(noise);
                }
            }
            for child in &mut node.children {
                perturb(child, noise);
            }
        }
        if let Some(root) = &mut noisy.root {
            perturb(root, noise);
        }
        prop_assert_eq!(fingerprint(&noisy), original);
    }

    /// Tree edit distance is a metric-ish similarity: identity ⇒ 0,
    /// symmetric, and bounded by the larger plan size.
    #[test]
    fn tree_edit_distance_properties(a in arb_plan(), b in arb_plan()) {
        let d_aa = uplan::core::ted::tree_edit_distance(&a, &a.clone());
        prop_assert_eq!(d_aa, 0);
        let d_ab = uplan::core::ted::tree_edit_distance(&a, &b);
        let d_ba = uplan::core::ted::tree_edit_distance(&b, &a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert!(d_ab <= a.operation_count() + b.operation_count());
        let s = uplan::core::ted::similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    /// The early-exit kernel is a faithful refinement of the full one: it
    /// returns the exact distance whenever the true distance is within the
    /// bound, and `Exceeded` otherwise — never a wrong number, never a
    /// false exceed.
    #[test]
    fn bounded_ted_refines_full_ted(a in arb_plan(), b in arb_plan(), bound in 0usize..24) {
        use uplan::core::ted::{tree_edit_distance_bounded, BoundedTed};
        let exact = uplan::core::ted::tree_edit_distance(&a, &b);
        let got = tree_edit_distance_bounded(&a, &b, bound);
        if exact <= bound {
            prop_assert_eq!(got, BoundedTed::Exact(exact));
        } else {
            prop_assert_eq!(got, BoundedTed::Exceeded);
        }
    }

    /// Category census totals always equal the node count.
    #[test]
    fn census_total_equals_node_count(plan in arb_plan()) {
        let counts = uplan::core::stats::CategoryCounts::of(&plan);
        prop_assert_eq!(counts.total(), plan.operation_count());
    }

    /// Interning round-trips arbitrary valid keywords: the symbol's
    /// spelling is the input, re-interning is idempotent, and distinct
    /// spellings get distinct symbols.
    #[test]
    fn interning_round_trips_keywords(kw in "[a-zA-Z][a-zA-Z0-9_]{0,24}") {
        let symbol = Symbol::intern(&kw);
        prop_assert_eq!(symbol.as_str(), kw.as_str());
        prop_assert_eq!(Symbol::intern(&kw), symbol);
        prop_assert_eq!(Symbol::get(&kw), Some(symbol));
        let other = Symbol::intern(&format!("{kw}_x"));
        prop_assert_ne!(other, symbol);
        prop_assert_eq!(other.stable(), other); // `_x` is not a digit suffix
        let suffixed = Symbol::intern(&format!("{kw}_17"));
        prop_assert_eq!(suffixed.stable(), symbol);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// BK-tree radius and k-NN queries agree with brute-force TED scans on
    /// randomized plan populations — the triangle-inequality pruning never
    /// loses a match.
    #[test]
    fn bk_tree_queries_match_brute_force_scans(
        plans in prop::collection::vec(arb_plan(), 1..32),
        probe in arb_plan(),
        radius in 0u32..6,
        k in 1usize..8,
    ) {
        let mut corpus = uplan::corpus::PlanCorpus::new();
        for plan in &plans {
            corpus.observe(plan);
        }
        let matches = |r: &uplan::corpus::QueryResponse| match &r.outcome {
            uplan::corpus::QueryOutcome::Matches(m) => m.clone(),
            other => panic!("metric query answered {other:?}"),
        };
        let indexed = corpus
            .execute(&uplan::corpus::QueryRequest::radius(radius).with_probe(probe.clone()))
            .unwrap();
        let scanned = corpus.scan_within_radius(&probe, radius);
        prop_assert_eq!(matches(&indexed), scanned.matches);
        prop_assert!(indexed.cost.ted_evals <= scanned.ted_evals);

        let indexed = corpus
            .execute(&uplan::corpus::QueryRequest::knn(k).with_probe(probe.clone()))
            .unwrap();
        let scanned = corpus.scan_nearest(&probe, k);
        let dist = |m: &uplan::corpus::Matches| m.iter().map(|&(_, d)| d).collect::<Vec<_>>();
        prop_assert_eq!(dist(&matches(&indexed)), dist(&scanned.matches));
        prop_assert_eq!(matches(&indexed).len(), k.min(corpus.len()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (but valid) predicates never break the TLP invariant on a
    /// healthy engine — the oracle itself is sound.
    #[test]
    fn tlp_holds_on_healthy_engines(seed in 0u64..500) {
        use minidb::profile::EngineProfile;
        use minidb::Database;
        use uplan::testing::generator::Generator;
        let mut db = Database::new(EngineProfile::Postgres);
        let mut generator = Generator::new(seed);
        generator.create_schema(&mut db, 1);
        for _ in 0..3 {
            let q = generator.query();
            let failure = uplan::testing::oracles::tlp(&mut db, &q.from, &q.predicate);
            prop_assert!(failure.is_none(), "{:?}", failure);
        }
    }
}
