//! Concurrent read-while-ingest on the snapshot/delta corpus service.
//!
//! The serving contract, exercised with real thread interleavings on the
//! TPC-H-derived fixture population:
//!
//! 1. **Epoch consistency** — a reader's pinned snapshot answers the same
//!    query with the same matches *and the same counted TED evaluations*
//!    no matter how many merges land meanwhile; refreshed snapshots only
//!    move forward in epochs.
//! 2. **Merge ≡ sequential ingest** — after any interleaving of batched
//!    submits and multi-threaded epoch merges, the final corpus is
//!    byte-identical (indexed binary codec) to ingesting the same batches
//!    sequentially into the seed corpus.

use std::sync::Arc;

use uplan::corpus::{CorpusService, QueryRequest, QueryResponse};
use uplan_bench::corpus_fixture;

fn knn_request(probe: &uplan::core::UnifiedPlan) -> QueryRequest {
    QueryRequest::knn(5).with_probe(probe.clone())
}

fn assert_epoch_consistent(a: &QueryResponse, b: &QueryResponse) {
    assert_eq!(a, b, "one snapshot, one query, two different answers");
    assert_eq!(a.cost, b.cost, "counted evals drifted within an epoch");
}

#[test]
fn readers_stay_epoch_consistent_while_ingest_merges() {
    const READERS: usize = 4;
    const QUERIES_PER_READER: usize = 30;

    let seed = corpus_fixture::derived_corpus(400, 0x5e2f_e001);
    let batches: Vec<Vec<_>> = corpus_fixture::derived_stream(900, 0xfeed_0001)
        .chunks(180)
        .map(<[_]>::to_vec)
        .collect();
    let probes = corpus_fixture::derived_stream(READERS * 2, 0x9e9e);

    let service = Arc::new(CorpusService::new(seed.clone()));
    let writer = {
        let service = Arc::clone(&service);
        let batches = batches.clone();
        std::thread::spawn(move || {
            for (round, batch) in batches.into_iter().enumerate() {
                service.submit(batch).expect("queue sized for the test");
                // Vary merge parallelism so readers race against every
                // ingest_parallel configuration.
                service.merge(1 + round % 4);
            }
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let service = Arc::clone(&service);
            let request = knn_request(&probes[r]);
            let refresh_request = knn_request(&probes[READERS + r]);
            std::thread::spawn(move || {
                let mut reader = service.reader();
                let mut last_epoch = 0u64;
                for _ in 0..QUERIES_PER_READER {
                    // A pinned snapshot is immutable: repeating the query
                    // gives identical matches and identical counted evals,
                    // merges or not.
                    let pinned = Arc::clone(reader.pinned());
                    let first = pinned.execute(&request).expect("knn");
                    let again = pinned.execute(&request).expect("knn");
                    assert_epoch_consistent(&first, &again);
                    assert_eq!(first.epoch, Some(pinned.epoch()));

                    // Refreshing never moves backwards.
                    let current = reader.current();
                    let epoch = current.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "epoch went backwards: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    current.execute(&refresh_request).expect("knn");
                }
            })
        })
        .collect();

    writer.join().expect("writer panicked");
    for reader in readers {
        reader.join().expect("reader panicked");
    }

    // Drain anything the ticker-less test left queued, then compare
    // byte-for-byte with sequential ingest of the same batches.
    service.merge(2);
    let snapshot = service.snapshot();
    assert_eq!(snapshot.epoch(), service.epoch());

    let mut sequential = seed;
    for batch in &batches {
        sequential.ingest_parallel(batch, 1);
    }
    assert_eq!(sequential.len(), snapshot.corpus().len());
    assert_eq!(
        sequential.to_binary_indexed().unwrap(),
        snapshot.corpus().to_binary_indexed().unwrap(),
        "merged corpus diverged from sequential ingest"
    );
}

#[test]
fn a_reader_pinned_before_merges_still_answers_from_its_epoch() {
    let seed = corpus_fixture::derived_corpus(300, 0xface_0002);
    let service = Arc::new(CorpusService::new(seed));
    let mut reader = service.reader();
    let probe = corpus_fixture::derived_stream(1, 0x0ddba11)[0].clone();
    let request = knn_request(&probe);

    let pinned = Arc::clone(reader.pinned());
    let before = pinned.execute(&request).expect("knn");

    for batch in corpus_fixture::derived_stream(400, 0xfeed_0002).chunks(100) {
        service.submit(batch.to_vec()).unwrap();
        service.merge(3);
    }
    assert!(service.epoch() > 0);

    // The pre-merge snapshot is untouched by four epochs of growth.
    let after = pinned.execute(&request).expect("knn");
    assert_epoch_consistent(&before, &after);
    assert_eq!(pinned.epoch(), 0);

    // A refresh observes the latest epoch and (generally) more plans.
    let current = reader.current();
    assert_eq!(current.epoch(), service.epoch());
    assert!(current.corpus().len() >= pinned.corpus().len());
}
